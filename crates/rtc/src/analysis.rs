//! End-to-end MPA analysis of an architecture model.

use crate::component::GreedyProcessingComponent;
use crate::curves::{ArrivalCurve, ServiceCurve};
use tempo_arch::engine::Estimate;
use tempo_arch::model::{
    ArchitectureModel, MeasurePoint, SchedulingPolicy, Step,
};
use tempo_arch::time::TimeValue;

/// Result of an MPA end-to-end analysis of one requirement.
#[derive(Clone, Debug)]
pub struct RtcReport {
    /// Requirement name.
    pub requirement: String,
    /// Conservative upper bound on the end-to-end worst-case response time.
    pub wcrt_bound: TimeValue,
    /// Per-step delay bounds (µs), in step order.
    pub step_delays_us: Vec<f64>,
    /// Maximum backlog (buffered events) seen at any step.
    pub max_backlog: f64,
}

impl RtcReport {
    /// The bound as a typed [`Estimate`]: MPA always produces conservative
    /// upper bounds.
    pub fn estimate(&self) -> Estimate {
        Estimate::UpperBound(self.wcrt_bound)
    }

    /// The bound in milliseconds (routed through
    /// [`Estimate::as_millis_f64`], the shared conversion path).
    pub fn wcrt_ms(&self) -> f64 {
        self.estimate().as_millis_f64()
    }
}

impl std::fmt::Display for RtcReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: WCRT {}", self.requirement, self.estimate())
    }
}

/// Errors of the MPA analysis.
#[derive(Clone, Debug, PartialEq)]
pub enum RtcError {
    /// The architecture model is invalid.
    Model(String),
    /// A requirement name could not be resolved.
    UnknownRequirement(String),
    /// A resource is overloaded; no finite delay bound exists.
    Overload {
        /// Index of the scenario step whose component diverged.
        step: usize,
    },
}

impl std::fmt::Display for RtcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtcError::Model(m) => write!(f, "invalid model: {m}"),
            RtcError::UnknownRequirement(n) => write!(f, "unknown requirement `{n}`"),
            RtcError::Overload { step } => {
                write!(f, "step {step} is overloaded; no finite delay bound exists")
            }
        }
    }
}

impl std::error::Error for RtcError {}

/// Resource index: processors first, then buses.
fn resource_of(model: &ArchitectureModel, step: &Step) -> usize {
    match step {
        Step::Execute { on, .. } => on.0,
        Step::Transfer { over, .. } => model.processors.len() + over.0,
    }
}

fn is_preemptive(model: &ArchitectureModel, resource: usize) -> bool {
    if resource < model.processors.len() {
        model.processors[resource].policy == SchedulingPolicy::FixedPriorityPreemptive
    } else {
        false
    }
}

/// Per-step arrival curves, propagated along every scenario chain with the
/// component delay bounds, iterated to a (conservative) fixed point.
fn propagate_arrivals(
    model: &ArchitectureModel,
) -> Result<Vec<Vec<(ArrivalCurve, f64)>>, RtcError> {
    // arrivals[s][k] = (input arrival curve of step k of scenario s, delay of that step)
    let mut arrivals: Vec<Vec<(ArrivalCurve, f64)>> = model
        .scenarios
        .iter()
        .map(|s| {
            s.steps
                .iter()
                .map(|_| (ArrivalCurve::from_event_model(&s.stimulus), 0.0))
                .collect()
        })
        .collect();

    for _round in 0..16 {
        let mut changed = false;
        for (si, s) in model.scenarios.iter().enumerate() {
            for (ki, step) in s.steps.iter().enumerate() {
                let delay = step_delay(model, &arrivals, si, ki)
                    .ok_or(RtcError::Overload { step: ki })?;
                if (delay - arrivals[si][ki].1).abs() > 0.5 {
                    arrivals[si][ki].1 = delay;
                    changed = true;
                }
                // The next step's input is this step's output.
                if ki + 1 < s.steps.len() {
                    let out = arrivals[si][ki].0.with_additional_jitter(delay);
                    if (out.jitter - arrivals[si][ki + 1].0.jitter).abs() > 0.5 {
                        arrivals[si][ki + 1].0 = out;
                        changed = true;
                    }
                }
                let _ = step;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(arrivals)
}

/// Builds the greedy processing component of one step given the current
/// arrival-curve estimates, and returns its delay bound (µs).
fn step_delay(
    model: &ArchitectureModel,
    arrivals: &[Vec<(ArrivalCurve, f64)>],
    scenario: usize,
    step_idx: usize,
) -> Option<f64> {
    let step = &model.scenarios[scenario].steps[step_idx];
    let resource = resource_of(model, step);
    let priority = model.scenarios[scenario].priority;
    let wcet = model.step_service_time(step).as_micros_f64();

    // Remaining service after all strictly-higher or equal-priority load from
    // *other* steps on the same resource (the interval domain cannot exploit
    // phase relations, so same-scenario steps also interfere — this is what
    // makes MPA conservative).
    let mut service = ServiceCurve::Full;
    let mut blocking: f64 = 0.0;
    for (osi, os) in model.scenarios.iter().enumerate() {
        for (oki, ostep) in os.steps.iter().enumerate() {
            if osi == scenario && oki == step_idx {
                continue;
            }
            if resource_of(model, ostep) != resource {
                continue;
            }
            let owcet = model.step_service_time(ostep).as_micros_f64();
            if os.priority <= priority {
                service = service.minus(arrivals[osi][oki].0.clone(), owcet);
            } else if !is_preemptive(model, resource) {
                blocking = blocking.max(owcet);
            }
        }
    }
    GreedyProcessingComponent::new(arrivals[scenario][step_idx].0.clone(), wcet, service)
        .with_blocking(blocking)
        .delay_bound_us()
}

/// Analyzes one requirement and returns the MPA end-to-end bound; the body
/// behind [`RtcEngine`](crate::RtcEngine), which answers the same query with
/// typed estimates through the `tempo_arch::engine::Engine` seam.
pub(crate) fn analyze_requirement_impl(
    model: &ArchitectureModel,
    requirement_name: &str,
) -> Result<RtcReport, RtcError> {
    model.validate().map_err(|e| RtcError::Model(e.to_string()))?;
    let req = model
        .requirement_by_name(requirement_name)
        .ok_or_else(|| RtcError::UnknownRequirement(requirement_name.to_string()))?;
    let arrivals = propagate_arrivals(model)?;
    let si = req.scenario.0;
    let last = match req.to {
        MeasurePoint::AfterStep(i) => i,
        MeasurePoint::Stimulus => 0,
    };
    let first = match req.from {
        MeasurePoint::Stimulus => 0,
        MeasurePoint::AfterStep(i) => (i + 1).min(last),
    };
    let mut step_delays_us = Vec::new();
    let mut max_backlog: f64 = 0.0;
    for (k, arrival) in arrivals[si].iter().enumerate().take(last + 1).skip(first) {
        step_delays_us.push(arrival.1);
        let step = &model.scenarios[si].steps[k];
        let wcet = model.step_service_time(step).as_micros_f64();
        let gpc = GreedyProcessingComponent::new(arrival.0.clone(), wcet, ServiceCurve::Full);
        if let Some(b) = gpc.backlog_bound() {
            max_backlog = max_backlog.max(b);
        }
    }
    let total_us: f64 = step_delays_us.iter().sum();
    Ok(RtcReport {
        requirement: req.name.clone(),
        wcrt_bound: TimeValue::ratio_us((total_us.ceil() as i128).max(0), 1),
        step_delays_us,
        max_backlog,
    })
}

/// Analyzes every requirement of the model; the body behind
/// [`RtcEngine`](crate::RtcEngine)'s `Query::WcrtAll`.
pub(crate) fn analyze_all_impl(model: &ArchitectureModel) -> Result<Vec<RtcReport>, RtcError> {
    model
        .requirements
        .iter()
        .map(|r| analyze_requirement_impl(model, &r.name))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_arch::model::{EventModel, Requirement, Scenario};

    fn two_task_model(policy: SchedulingPolicy) -> ArchitectureModel {
        let mut m = ArchitectureModel::new("rtc-test");
        let cpu = m.add_processor("CPU", 1, policy);
        let hi = m.add_scenario(Scenario {
            name: "hi".into(),
            stimulus: EventModel::Periodic {
                period: TimeValue::millis(20),
            },
            priority: 0,
            steps: vec![Step::Execute {
                operation: "short".into(),
                instructions: 2_000,
                on: cpu,
            }],
        });
        let lo = m.add_scenario(Scenario {
            name: "lo".into(),
            stimulus: EventModel::Periodic {
                period: TimeValue::millis(50),
            },
            priority: 1,
            steps: vec![Step::Execute {
                operation: "long".into(),
                instructions: 10_000,
                on: cpu,
            }],
        });
        m.add_requirement(Requirement {
            name: "hi-rt".into(),
            scenario: hi,
            from: MeasurePoint::Stimulus,
            to: MeasurePoint::AfterStep(0),
            deadline: TimeValue::millis(20),
        });
        m.add_requirement(Requirement {
            name: "lo-rt".into(),
            scenario: lo,
            from: MeasurePoint::Stimulus,
            to: MeasurePoint::AfterStep(0),
            deadline: TimeValue::millis(50),
        });
        m
    }

    #[test]
    fn bounds_dominate_exact_wcrt() {
        for policy in [
            SchedulingPolicy::FixedPriorityPreemptive,
            SchedulingPolicy::FixedPriorityNonPreemptive,
        ] {
            let m = two_task_model(policy);
            for name in ["hi-rt", "lo-rt"] {
                let exact = tempo_arch::engine::Session::new(
                    &m,
                    tempo_arch::AnalysisConfig::default(),
                )
                .unwrap()
                .wcrt(name)
                .unwrap()
                .wcrt
                .unwrap()
                .as_millis_f64();
                let bound = analyze_requirement_impl(&m, name).unwrap().wcrt_ms();
                assert!(
                    bound + 1e-6 >= exact,
                    "{policy:?} {name}: MPA bound {bound} below exact {exact}"
                );
            }
        }
    }

    #[test]
    fn preemptive_high_priority_bound_close_to_wcet() {
        let m = two_task_model(SchedulingPolicy::FixedPriorityPreemptive);
        let hi = analyze_requirement_impl(&m, "hi-rt").unwrap();
        assert!((hi.wcrt_ms() - 2.0).abs() < 0.1, "{}", hi.wcrt_ms());
        let lo = analyze_requirement_impl(&m, "lo-rt").unwrap();
        assert!(lo.wcrt_ms() >= 12.0 - 0.1);
    }

    #[test]
    fn non_preemptive_blocking_included() {
        let m = two_task_model(SchedulingPolicy::FixedPriorityNonPreemptive);
        let hi = analyze_requirement_impl(&m, "hi-rt").unwrap();
        assert!(hi.wcrt_ms() >= 12.0 - 0.1, "{}", hi.wcrt_ms());
    }

    #[test]
    fn overload_detected() {
        let mut m = two_task_model(SchedulingPolicy::FixedPriorityPreemptive);
        if let Step::Execute { instructions, .. } = &mut m.scenarios[0].steps[0] {
            *instructions = 25_000; // 25 ms every 20 ms
        }
        assert!(matches!(
            analyze_requirement_impl(&m, "lo-rt"),
            Err(RtcError::Overload { .. })
        ));
    }

    #[test]
    fn unknown_requirement() {
        let m = two_task_model(SchedulingPolicy::FixedPriorityPreemptive);
        assert!(matches!(
            analyze_requirement_impl(&m, "nope"),
            Err(RtcError::UnknownRequirement(_))
        ));
        assert_eq!(analyze_all_impl(&m).unwrap().len(), 2);
    }

    #[test]
    fn burstier_input_gives_larger_bound() {
        let mut periodic = two_task_model(SchedulingPolicy::FixedPriorityPreemptive);
        let mut bursty = periodic.clone();
        bursty.scenarios[1].stimulus = EventModel::Burst {
            period: TimeValue::millis(50),
            jitter: TimeValue::millis(100),
            min_separation: TimeValue::millis(1),
        };
        periodic.scenarios[1].stimulus = EventModel::Periodic {
            period: TimeValue::millis(50),
        };
        let p = analyze_requirement_impl(&periodic, "lo-rt").unwrap().wcrt_ms();
        let b = analyze_requirement_impl(&bursty, "lo-rt").unwrap().wcrt_ms();
        assert!(b >= p, "burst bound {b} < periodic bound {p}");
    }
}
