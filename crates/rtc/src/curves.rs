//! Arrival and service curves.
//!
//! Curves are evaluated in microseconds (`f64`); the analytic baselines do not
//! need the exact rational arithmetic of the timed-automata path.

use tempo_arch::model::EventModel;
use tempo_arch::time::TimeValue;

/// Small epsilon used when evaluating limits "just before" a staircase jump.
const EPS: f64 = 1e-6;

/// An upper/lower arrival curve pair for a `(P, J, D)` event stream.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrivalCurve {
    /// Period in µs.
    pub period: f64,
    /// Jitter in µs.
    pub jitter: f64,
    /// Minimal distance between events in µs (0 = unconstrained).
    pub min_distance: f64,
}

impl ArrivalCurve {
    /// Builds the arrival curve of an architecture-level event model.
    pub fn from_event_model(model: &EventModel) -> ArrivalCurve {
        let (p, j, d) = match model {
            EventModel::PeriodicOffset { period, .. } | EventModel::Periodic { period } => {
                (period.as_micros_f64(), 0.0, period.as_micros_f64())
            }
            EventModel::Sporadic { min_interarrival } => (
                min_interarrival.as_micros_f64(),
                0.0,
                min_interarrival.as_micros_f64(),
            ),
            EventModel::PeriodicJitter { period, jitter } => (
                period.as_micros_f64(),
                jitter.as_micros_f64(),
                (period.as_micros_f64() - jitter.as_micros_f64()).max(0.0),
            ),
            EventModel::Burst {
                period,
                jitter,
                min_separation,
            } => (
                period.as_micros_f64(),
                jitter.as_micros_f64(),
                min_separation.as_micros_f64(),
            ),
        };
        ArrivalCurve {
            period: p,
            jitter: j,
            min_distance: d,
        }
    }

    /// A strictly periodic stream.
    pub fn periodic(period: TimeValue) -> ArrivalCurve {
        ArrivalCurve {
            period: period.as_micros_f64(),
            jitter: 0.0,
            min_distance: period.as_micros_f64(),
        }
    }

    /// Upper arrival curve `α⁺(Δ)`: the maximum number of events in any
    /// half-open window of length `delta_us`.
    pub fn upper(&self, delta_us: f64) -> f64 {
        if delta_us < 0.0 {
            return 0.0;
        }
        let by_period = ((delta_us + self.jitter) / self.period).ceil().max(1.0);
        if self.min_distance > 0.0 {
            let by_distance = (delta_us / self.min_distance).ceil().max(1.0);
            by_period.min(by_distance)
        } else {
            by_period
        }
    }

    /// Lower arrival curve `α⁻(Δ)`.
    pub fn lower(&self, delta_us: f64) -> f64 {
        (((delta_us - self.jitter) / self.period).floor()).max(0.0)
    }

    /// The earliest window length in which the `n`-th event (1-based) can have
    /// arrived: the pseudo-inverse of `α⁺`.
    pub fn earliest_arrival(&self, n: u64) -> f64 {
        let n = n as f64;
        let by_period = (n - 1.0) * self.period - self.jitter;
        let by_distance = (n - 1.0) * self.min_distance;
        by_period.max(by_distance).max(0.0)
    }

    /// The output arrival curve of a component with the given delay bound:
    /// events are delayed by at most `delay_us`, which adds to the jitter.
    pub fn with_additional_jitter(&self, delay_us: f64) -> ArrivalCurve {
        ArrivalCurve {
            period: self.period,
            jitter: self.jitter + delay_us,
            min_distance: self.min_distance,
        }
    }

    /// Jump points of `α⁺` up to `horizon_us` (used when maximizing
    /// differences of curves).
    pub fn jump_points(&self, horizon_us: f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut n = 1u64;
        loop {
            let t = self.earliest_arrival(n);
            if t > horizon_us || n > 1_000_000 {
                break;
            }
            out.push(t);
            n += 1;
        }
        out
    }
}

/// A lower service curve `β⁻(Δ)`: the execution time (µs) guaranteed to be
/// available in any window of length `Δ`.
#[derive(Clone, Debug)]
pub enum ServiceCurve {
    /// A fully available resource: `β(Δ) = Δ`.
    Full,
    /// The remaining service after a greedy processing component consumed
    /// `α⁺ · wcet` from `base`:
    /// `β'(Δ) = sup_{0 ≤ λ ≤ Δ} ( base(λ) − Σ αᵢ⁺(λ)·Cᵢ )⁺`.
    Remaining {
        /// The service offered before the higher-priority load.
        base: Box<ServiceCurve>,
        /// The higher-priority streams and their execution demands (µs).
        consumed: Vec<(ArrivalCurve, f64)>,
    },
}

impl ServiceCurve {
    /// Removes the demand of a higher-priority stream from this service.
    pub fn minus(self, arrival: ArrivalCurve, wcet_us: f64) -> ServiceCurve {
        match self {
            ServiceCurve::Remaining { base, mut consumed } => {
                consumed.push((arrival, wcet_us));
                ServiceCurve::Remaining { base, consumed }
            }
            other => ServiceCurve::Remaining {
                base: Box::new(other),
                consumed: vec![(arrival, wcet_us)],
            },
        }
    }

    /// Evaluates `β⁻(Δ)`.
    pub fn eval(&self, delta_us: f64) -> f64 {
        match self {
            ServiceCurve::Full => delta_us.max(0.0),
            ServiceCurve::Remaining { base, consumed } => {
                // The supremum over λ of an increasing function minus a
                // staircase is attained either at λ = Δ or immediately before
                // one of the staircase jumps.
                let mut candidates = vec![delta_us];
                for (a, _) in consumed {
                    for t in a.jump_points(delta_us) {
                        if t > 0.0 && t <= delta_us {
                            candidates.push(t - EPS);
                        }
                    }
                }
                candidates.push(0.0);
                let mut best: f64 = 0.0;
                for lambda in candidates {
                    let lambda = lambda.clamp(0.0, delta_us);
                    let mut v = base.eval(lambda);
                    for (a, c) in consumed {
                        v -= a.upper(lambda) * c;
                    }
                    if v > best {
                        best = v;
                    }
                }
                best
            }
        }
    }

    /// The earliest window length at which the service reaches `demand_us`,
    /// searched up to `horizon_us`; `None` if the demand is never met.
    pub fn time_to_serve(&self, demand_us: f64, horizon_us: f64) -> Option<f64> {
        if self.eval(horizon_us) < demand_us {
            return None;
        }
        let (mut lo, mut hi) = (0.0f64, horizon_us);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.eval(mid) >= demand_us {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_arrival_bounds() {
        let a = ArrivalCurve::periodic(TimeValue::millis(10));
        assert_eq!(a.upper(0.0), 1.0);
        assert_eq!(a.upper(10_000.0), 1.0);
        assert_eq!(a.upper(10_001.0), 2.0);
        assert_eq!(a.lower(25_000.0), 2.0);
        assert_eq!(a.earliest_arrival(1), 0.0);
        assert_eq!(a.earliest_arrival(3), 20_000.0);
    }

    #[test]
    fn jitter_creates_bursts() {
        let a = ArrivalCurve {
            period: 10_000.0,
            jitter: 20_000.0,
            min_distance: 0.0,
        };
        // Up to 3 events can coincide when J = 2P.
        assert_eq!(a.upper(1.0), 3.0);
        assert_eq!(a.earliest_arrival(3), 0.0);
        assert_eq!(a.earliest_arrival(4), 10_000.0);
        let tighter = ArrivalCurve {
            min_distance: 1_000.0,
            ..a
        };
        assert_eq!(tighter.upper(1_000.0), 1.0);
    }

    #[test]
    fn from_event_models() {
        let p = TimeValue::millis(10);
        let a = ArrivalCurve::from_event_model(&EventModel::PeriodicJitter {
            period: p,
            jitter: TimeValue::millis(4),
        });
        assert_eq!(a.jitter, 4_000.0);
        assert_eq!(a.min_distance, 6_000.0);
        let a = ArrivalCurve::from_event_model(&EventModel::Sporadic { min_interarrival: p });
        assert_eq!(a.jitter, 0.0);
    }

    #[test]
    fn full_service_is_identity() {
        let b = ServiceCurve::Full;
        assert_eq!(b.eval(5_000.0), 5_000.0);
        assert_eq!(b.time_to_serve(2_500.0, 10_000.0), Some(2_500.0));
    }

    #[test]
    fn remaining_service_subtracts_interference() {
        // Higher-priority stream: 2 ms of work every 10 ms.
        let hp = ArrivalCurve::periodic(TimeValue::millis(10));
        let b = ServiceCurve::Full.minus(hp, 2_000.0);
        // In a 10 ms window at most one hp event: at least 8 ms of service.
        let v = b.eval(10_000.0);
        assert!((v - 8_000.0).abs() < 1.0, "{v}");
        // In a 1 ms window the hp job can consume everything.
        assert!(b.eval(1_000.0) < 1.0);
        // 5 ms of demand is served within 7 ms.
        let t = b.time_to_serve(5_000.0, 100_000.0).unwrap();
        assert!((t - 7_000.0).abs() < 1.0, "{t}");
    }

    #[test]
    fn overload_never_serves() {
        let hp = ArrivalCurve::periodic(TimeValue::millis(10));
        let b = ServiceCurve::Full.minus(hp, 11_000.0);
        assert_eq!(b.time_to_serve(1_000.0, 200_000.0), None);
    }
}
