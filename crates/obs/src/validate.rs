//! Structural validation of a captured JSONL trace
//! ([`JsonlSubscriber`](crate::JsonlSubscriber) output): every line must
//! parse, spans must balance per thread (strict LIFO nesting, matching ids),
//! and timestamps must be monotone per thread.  CI runs this over the trace
//! the `trace_explore` bench emits so the export format cannot rot, and the
//! chaos harness runs it over fault-injected runs to prove panics and budget
//! expiries still produce well-formed traces.

use std::collections::HashMap;

/// Summary of a successfully validated trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total non-empty lines validated.
    pub lines: usize,
    /// `span_start` records seen.
    pub spans_started: usize,
    /// `span_end` records seen.
    pub spans_ended: usize,
    /// Deepest per-thread span nesting observed.
    pub max_depth: usize,
    /// Distinct thread indices observed.
    pub threads: usize,
}

/// Extracts the string value of `"key":"…"` from a single-line JSON object.
fn str_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    // Our writer escapes quotes as \"; scan for the first unescaped quote.
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return Some(rest[..end].to_string()),
            _ => end += 1,
        }
    }
    None
}

/// Extracts the numeric value of `"key":123` from a single-line JSON object.
fn num_field(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    if digits.is_empty() {
        None
    } else {
        digits.parse().ok()
    }
}

/// Validates a JSONL trace stream.  Returns the summary on success or a
/// description of the first structural violation: an unparseable line, a
/// `span_end` without a matching open span (or closing out of LIFO order),
/// a timestamp running backwards within a thread, or spans left open at the
/// end of the stream.
pub fn validate_jsonl<'a, I>(lines: I) -> Result<TraceCheck, String>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut check = TraceCheck::default();
    // Per-thread open-span stacks and timestamp high-water marks.
    let mut stacks: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut last_ts: HashMap<u64, u64> = HashMap::new();
    for (idx, raw) in lines.into_iter().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err(format!("line {lineno}: not a JSON object: {line}"));
        }
        let kind = str_field(line, "type")
            .ok_or_else(|| format!("line {lineno}: missing \"type\": {line}"))?;
        let ts = num_field(line, "ts")
            .ok_or_else(|| format!("line {lineno}: missing \"ts\": {line}"))?;
        let tid = num_field(line, "tid")
            .ok_or_else(|| format!("line {lineno}: missing \"tid\": {line}"))?;
        if str_field(line, "name").is_none() && kind != "span_end" {
            return Err(format!("line {lineno}: missing \"name\": {line}"));
        }
        let prev = last_ts.entry(tid).or_insert(0);
        if ts < *prev {
            return Err(format!(
                "line {lineno}: timestamp {ts} runs backwards on tid {tid} (previous {prev})"
            ));
        }
        *prev = ts;
        match kind.as_str() {
            "span_start" => {
                let id = num_field(line, "id")
                    .ok_or_else(|| format!("line {lineno}: span_start without id"))?;
                let stack = stacks.entry(tid).or_default();
                stack.push(id);
                check.max_depth = check.max_depth.max(stack.len());
                check.spans_started += 1;
            }
            "span_end" => {
                let id = num_field(line, "id")
                    .ok_or_else(|| format!("line {lineno}: span_end without id"))?;
                let stack = stacks.entry(tid).or_default();
                match stack.pop() {
                    Some(open) if open == id => check.spans_ended += 1,
                    Some(open) => {
                        return Err(format!(
                            "line {lineno}: span {id} closed out of order on tid {tid} \
                             (innermost open span is {open})"
                        ));
                    }
                    None => {
                        return Err(format!(
                            "line {lineno}: span {id} closed on tid {tid} with no span open"
                        ));
                    }
                }
            }
            "counter" | "histogram" | "event" => {}
            other => {
                return Err(format!("line {lineno}: unknown record type \"{other}\""));
            }
        }
        check.lines += 1;
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} span(s) left open at end of trace: {stack:?}",
                stack.len()
            ));
        }
    }
    check.threads = last_ts.len();
    Ok(check)
}
