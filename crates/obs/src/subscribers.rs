//! The bundled [`Subscriber`](crate::Subscriber) implementations: in-memory
//! metrics aggregation, a JSONL event stream and a Chrome `about:tracing`
//! exporter.  All three are internally locked and safe to share across the
//! exploring threads; none of them allocates unless records actually arrive.

use crate::{json_escape, Subscriber, Value};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

/// Number of power-of-two histogram buckets (covers the full `u64` range).
const BUCKETS: usize = 64;

#[derive(Clone)]
struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        // Bucket i collects values whose highest set bit is i (value 0 goes
        // into bucket 0), i.e. power-of-two latency/size classes.
        let bucket = (63 - value.max(1).leading_zeros()) as usize;
        self.buckets[bucket] += 1;
    }
}

#[derive(Clone, Default)]
struct SpanStat {
    count: u64,
    total_nanos: u64,
    max_nanos: u64,
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStat>,
    events: BTreeMap<String, u64>,
}

/// In-memory metrics aggregation: counter totals, histogram buckets and
/// per-span call counts / cumulative / max nanoseconds, keyed by record name
/// (spans with a detail label aggregate under `"name:detail"` *and* under the
/// plain `"name"`).  Snapshot with [`MetricsRegistry::snapshot`].
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.  Wrap in an `Arc` and pass to
    /// [`install`](crate::install).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// A point-in-time copy of the aggregated metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry lock");
        MetricsSnapshot {
            counters: inner.counters.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        HistogramSnapshot {
                            count: h.count,
                            sum: h.sum,
                            min: if h.count == 0 { 0 } else { h.min },
                            max: h.max,
                        },
                    )
                })
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|(name, s)| {
                    (
                        name.clone(),
                        SpanSnapshot {
                            count: s.count,
                            total_nanos: s.total_nanos,
                            max_nanos: s.max_nanos,
                        },
                    )
                })
                .collect(),
            events: inner.events.clone(),
        }
    }
}

impl Subscriber for MetricsRegistry {
    fn on_span_end(
        &self,
        _id: u64,
        name: &'static str,
        detail: Option<&str>,
        _ts_nanos: u64,
        dur_nanos: u64,
        _tid: u64,
    ) {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        let plain = inner.spans.entry(name.to_string()).or_default();
        plain.count += 1;
        plain.total_nanos = plain.total_nanos.saturating_add(dur_nanos);
        plain.max_nanos = plain.max_nanos.max(dur_nanos);
        if let Some(detail) = detail {
            let keyed = inner.spans.entry(format!("{name}:{detail}")).or_default();
            keyed.count += 1;
            keyed.total_nanos = keyed.total_nanos.saturating_add(dur_nanos);
            keyed.max_nanos = keyed.max_nanos.max(dur_nanos);
        }
    }

    fn on_counter(&self, name: &'static str, delta: u64, _ts_nanos: u64, _tid: u64) {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn on_histogram(&self, name: &'static str, value: u64, _ts_nanos: u64, _tid: u64) {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::new)
            .record(value);
    }

    fn on_event(&self, name: &'static str, _fields: &[(&'static str, Value)], _ts: u64, _tid: u64) {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        *inner.events.entry(name.to_string()).or_insert(0) += 1;
    }
}

/// Aggregated statistics of one histogram in a [`MetricsSnapshot`].
#[derive(Clone, Copy, Debug, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (`0` when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

/// Aggregated statistics of one span name in a [`MetricsSnapshot`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanSnapshot {
    /// Number of completed spans.
    pub count: u64,
    /// Cumulative duration in nanoseconds (saturating).
    pub total_nanos: u64,
    /// Longest single span in nanoseconds.
    pub max_nanos: u64,
}

/// A point-in-time copy of a [`MetricsRegistry`], with accessors and a
/// hand-rolled JSON rendering (the offline build's serde is a no-op stub).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span summaries by name (and `"name:detail"` for labelled spans).
    pub spans: BTreeMap<String, SpanSnapshot>,
    /// Event counts by name.
    pub events: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// The total of the named counter (`0` when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Completed-span count of the named span (`0` when absent).
    pub fn span_count(&self, name: &str) -> u64 {
        self.spans.get(name).map(|s| s.count).unwrap_or(0)
    }

    /// Cumulative nanoseconds of the named span (`0` when absent).
    pub fn span_total_nanos(&self, name: &str) -> u64 {
        self.spans.get(name).map(|s| s.total_nanos).unwrap_or(0)
    }

    /// Occurrence count of the named event (`0` when absent).
    pub fn event_count(&self, name: &str) -> u64 {
        self.events.get(name).copied().unwrap_or(0)
    }

    /// `true` iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.events.is_empty()
    }

    /// Renders the snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        render_u64_map(&mut out, &self.counters);
        out.push_str("},\n  \"spans\": {");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"total_nanos\": {}, \"max_nanos\": {}}}",
                json_escape(name),
                s.count,
                s.total_nanos,
                s.max_nanos
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                json_escape(name),
                h.count,
                h.sum,
                h.min,
                h.max
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"events\": {");
        render_u64_map(&mut out, &self.events);
        out.push_str("}\n}\n");
        out
    }
}

fn render_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    for (i, (name, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", json_escape(name), value));
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
}

// ---------------------------------------------------------------------------
// JsonlSubscriber
// ---------------------------------------------------------------------------

/// Captures the full instrumentation stream as one JSON object per line —
/// the machine-checkable export format (see
/// [`validate_jsonl`](crate::validate_jsonl)).  Lines from different threads
/// interleave; per-thread order follows program order, so validation is
/// per-`tid`.
#[derive(Default)]
pub struct JsonlSubscriber {
    lines: Mutex<Vec<String>>,
}

impl JsonlSubscriber {
    /// An empty in-memory JSONL capture.
    pub fn new() -> JsonlSubscriber {
        JsonlSubscriber::default()
    }

    fn push(&self, line: String) {
        self.lines.lock().expect("jsonl subscriber lock").push(line);
    }

    /// A copy of the captured lines.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("jsonl subscriber lock").clone()
    }

    /// Number of captured lines.
    pub fn len(&self) -> usize {
        self.lines.lock().expect("jsonl subscriber lock").len()
    }

    /// `true` iff nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The captured stream as one newline-terminated string.
    pub fn contents(&self) -> String {
        let lines = self.lines.lock().expect("jsonl subscriber lock");
        let mut out = String::new();
        for line in lines.iter() {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Writes the captured stream to `path`.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.contents().as_bytes())
    }
}

fn render_fields(fields: &[(&'static str, Value)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":", json_escape(key)));
        value.render_json(&mut out);
    }
    out.push('}');
    out
}

impl Subscriber for JsonlSubscriber {
    fn on_span_start(
        &self,
        id: u64,
        name: &'static str,
        detail: Option<&str>,
        ts_nanos: u64,
        tid: u64,
    ) {
        let detail = detail
            .map(|d| format!(",\"detail\":\"{}\"", json_escape(d)))
            .unwrap_or_default();
        self.push(format!(
            "{{\"type\":\"span_start\",\"id\":{id},\"name\":\"{}\"{detail},\"ts\":{ts_nanos},\"tid\":{tid}}}",
            json_escape(name)
        ));
    }

    fn on_span_end(
        &self,
        id: u64,
        name: &'static str,
        _detail: Option<&str>,
        ts_nanos: u64,
        dur_nanos: u64,
        tid: u64,
    ) {
        self.push(format!(
            "{{\"type\":\"span_end\",\"id\":{id},\"name\":\"{}\",\"ts\":{ts_nanos},\"dur\":{dur_nanos},\"tid\":{tid}}}",
            json_escape(name)
        ));
    }

    fn on_counter(&self, name: &'static str, delta: u64, ts_nanos: u64, tid: u64) {
        self.push(format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"delta\":{delta},\"ts\":{ts_nanos},\"tid\":{tid}}}",
            json_escape(name)
        ));
    }

    fn on_histogram(&self, name: &'static str, value: u64, ts_nanos: u64, tid: u64) {
        self.push(format!(
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"value\":{value},\"ts\":{ts_nanos},\"tid\":{tid}}}",
            json_escape(name)
        ));
    }

    fn on_event(&self, name: &'static str, fields: &[(&'static str, Value)], ts: u64, tid: u64) {
        self.push(format!(
            "{{\"type\":\"event\",\"name\":\"{}\",\"ts\":{ts},\"tid\":{tid},\"fields\":{}}}",
            json_escape(name),
            render_fields(fields)
        ));
    }
}

// ---------------------------------------------------------------------------
// ChromeTraceSubscriber
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ChromeInner {
    events: Vec<String>,
    counter_totals: BTreeMap<&'static str, u64>,
}

/// Exports the stream in the Chrome `about:tracing` / Perfetto trace-event
/// JSON format: spans become complete (`"ph":"X"`) events on per-thread
/// tracks, counters become `"ph":"C"` running totals and events become
/// instants (`"ph":"i"`) — load the written file in `chrome://tracing` or
/// [ui.perfetto.dev](https://ui.perfetto.dev) for a flamegraph of a parallel
/// exploration.
#[derive(Default)]
pub struct ChromeTraceSubscriber {
    inner: Mutex<ChromeInner>,
}

impl ChromeTraceSubscriber {
    /// An empty trace.
    pub fn new() -> ChromeTraceSubscriber {
        ChromeTraceSubscriber::default()
    }

    /// Renders the captured trace as a Chrome trace-event JSON document.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().expect("chrome trace lock");
        let mut out = String::from("{\"traceEvents\":[");
        for (i, event) in inner.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(event);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Writes the trace to `path`.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Nanoseconds → Chrome trace microseconds (fractional, 3 decimals).
fn us(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

impl Subscriber for ChromeTraceSubscriber {
    fn on_span_end(
        &self,
        _id: u64,
        name: &'static str,
        detail: Option<&str>,
        ts_nanos: u64,
        dur_nanos: u64,
        tid: u64,
    ) {
        let full_name = match detail {
            Some(d) => format!("{name} [{d}]"),
            None => name.to_string(),
        };
        let start = ts_nanos.saturating_sub(dur_nanos);
        let line = format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid}}}",
            json_escape(&full_name),
            us(start),
            us(dur_nanos)
        );
        self.inner.lock().expect("chrome trace lock").events.push(line);
    }

    fn on_counter(&self, name: &'static str, delta: u64, ts_nanos: u64, tid: u64) {
        let mut inner = self.inner.lock().expect("chrome trace lock");
        let total = {
            let slot = inner.counter_totals.entry(name).or_insert(0);
            *slot += delta;
            *slot
        };
        let line = format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{tid},\"args\":{{\"value\":{total}}}}}",
            json_escape(name),
            us(ts_nanos)
        );
        inner.events.push(line);
    }

    fn on_event(&self, name: &'static str, fields: &[(&'static str, Value)], ts: u64, tid: u64) {
        let line = format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{tid},\"args\":{}}}",
            json_escape(name),
            us(ts),
            render_fields(fields)
        );
        self.inner.lock().expect("chrome trace lock").events.push(line);
    }
}
