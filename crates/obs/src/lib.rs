//! Structured tracing and metrics for the tempo analysis stack.
//!
//! The explorers, the engine portfolio and the incremental analysis database
//! are performance-critical, and their behaviour used to be visible only
//! through scattered one-off statistics structs.  This crate provides one
//! `tracing`-style seam for all of them: named **spans** with RAII timing,
//! monotonic **counters**, bucketed **histograms** and structured **events**,
//! dispatched to a process-global [`Subscriber`].
//!
//! # Zero cost without a subscriber
//!
//! The instrumentation is designed to vanish when nobody is listening.  The
//! global subscriber slot is guarded by a single [`AtomicBool`] that every
//! instrumentation site checks with **one relaxed atomic load** (the same
//! idiom as `tempo_dbm::set_incremental_close`); with no subscriber
//! installed, no timestamp is taken, no field is formatted, no allocation
//! happens and no lock is touched.  [`dispatch_count`] counts actual
//! subscriber deliveries so tests can assert the fast path stayed silent.
//!
//! # Subscribers
//!
//! Three subscribers ship with the crate:
//!
//! * [`MetricsRegistry`] — in-memory aggregation (counter totals, histogram
//!   buckets, per-span call counts and cumulative nanoseconds), snapshotable
//!   to a JSON report.  The cheapest subscriber; suitable for production
//!   phase-time breakdowns.
//! * [`JsonlSubscriber`] — one JSON object per line for every span start/end,
//!   counter, histogram sample and event.  [`validate_jsonl`] checks a
//!   captured stream for parseability, balanced spans and per-thread
//!   monotone timestamps.
//! * [`ChromeTraceSubscriber`] — a Chrome `about:tracing` / Perfetto
//!   compatible trace for flamegraph-style inspection of parallel runs.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//!
//! let registry = Arc::new(tempo_obs::MetricsRegistry::new());
//! tempo_obs::install(registry.clone());
//! {
//!     let _span = tempo_obs::span!("demo.phase");
//!     tempo_obs::counter("demo.widgets", 3);
//! }
//! tempo_obs::uninstall();
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("demo.widgets"), 3);
//! assert_eq!(snapshot.span_count("demo.phase"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod subscribers;
mod validate;

pub use subscribers::{
    ChromeTraceSubscriber, HistogramSnapshot, JsonlSubscriber, MetricsRegistry, MetricsSnapshot,
    SpanSnapshot,
};
pub use validate::{validate_jsonl, TraceCheck};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A structured field value attached to an [`event!`].
#[derive(Clone, Debug)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string.
    Str(String),
}

impl Value {
    /// Appends the value to `out` as a JSON literal.
    pub fn render_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) if v.is_finite() => out.push_str(&format!("{v}")),
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I64(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Receives the instrumentation stream.  All methods default to no-ops so a
/// subscriber only implements what it consumes.
///
/// Timestamps (`ts_nanos`) are nanoseconds since an arbitrary process-local
/// epoch, monotone per thread; `tid` is a small dense per-thread index (not
/// the OS thread id); span `id`s are unique per process.
pub trait Subscriber: Send + Sync {
    /// A span opened (`id` pairs it with the matching [`Subscriber::on_span_end`]).
    fn on_span_start(
        &self,
        id: u64,
        name: &'static str,
        detail: Option<&str>,
        ts_nanos: u64,
        tid: u64,
    ) {
        let _ = (id, name, detail, ts_nanos, tid);
    }

    /// A span closed; `dur_nanos` is the RAII-measured duration.
    fn on_span_end(
        &self,
        id: u64,
        name: &'static str,
        detail: Option<&str>,
        ts_nanos: u64,
        dur_nanos: u64,
        tid: u64,
    ) {
        let _ = (id, name, detail, ts_nanos, dur_nanos, tid);
    }

    /// A monotonic counter incremented by `delta`.
    fn on_counter(&self, name: &'static str, delta: u64, ts_nanos: u64, tid: u64) {
        let _ = (name, delta, ts_nanos, tid);
    }

    /// One sample recorded into the named histogram.
    fn on_histogram(&self, name: &'static str, value: u64, ts_nanos: u64, tid: u64) {
        let _ = (name, value, ts_nanos, tid);
    }

    /// A structured point event.
    fn on_event(&self, name: &'static str, fields: &[(&'static str, Value)], ts_nanos: u64, tid: u64) {
        let _ = (name, fields, ts_nanos, tid);
    }
}

/// Fast-path gate: `true` iff a subscriber is installed.  Every
/// instrumentation macro and function checks this first, so the disabled
/// cost of an instrumentation site is one relaxed atomic load and a branch.
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// The installed subscriber (slow path only).
static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

/// Number of records actually delivered to a subscriber — the observable for
/// "the fast path stayed silent" (see `tests/obs_fastpath.rs` in the
/// workspace root).
static DISPATCHED: AtomicU64 = AtomicU64::new(0);

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-local trace epoch (first use).
pub fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Installs `subscriber` as the process-global subscriber, replacing any
/// previous one.  The flag is process-global and not synchronized with
/// in-flight instrumentation; like `tempo_dbm::set_incremental_close`,
/// install/uninstall from tests that own the whole process or serialize
/// access.
pub fn install(subscriber: Arc<dyn Subscriber>) {
    *SUBSCRIBER.write().expect("tempo_obs subscriber lock") = Some(subscriber);
    INSTALLED.store(true, Ordering::SeqCst);
}

/// Removes the global subscriber, restoring the zero-cost fast path.
pub fn uninstall() {
    INSTALLED.store(false, Ordering::SeqCst);
    *SUBSCRIBER.write().expect("tempo_obs subscriber lock") = None;
}

/// `true` iff a subscriber is installed — one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// How many records have been delivered to subscribers since process start.
/// Stays exactly zero while no subscriber is installed.
pub fn dispatch_count() -> u64 {
    DISPATCHED.load(Ordering::SeqCst)
}

/// Slow path: clones the subscriber out of the slot (so its callbacks run
/// without the global lock held) and invokes `f` with it and the calling
/// thread's dense index.
fn with_subscriber(f: impl FnOnce(&dyn Subscriber, u64)) {
    let subscriber = SUBSCRIBER
        .read()
        .ok()
        .and_then(|slot| slot.as_ref().map(Arc::clone));
    if let Some(subscriber) = subscriber {
        DISPATCHED.fetch_add(1, Ordering::Relaxed);
        TID.with(|tid| f(subscriber.as_ref(), *tid));
    }
}

/// Increments the named monotonic counter.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let ts = now_nanos();
    with_subscriber(|s, tid| s.on_counter(name, delta, ts, tid));
}

/// Records one sample into the named histogram.
#[inline]
pub fn histogram(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let ts = now_nanos();
    with_subscriber(|s, tid| s.on_histogram(name, value, ts, tid));
}

/// Emits a structured event.  Prefer the [`event!`] macro, which skips field
/// construction entirely when no subscriber is installed.
pub fn dispatch_event(name: &'static str, fields: &[(&'static str, Value)]) {
    if !enabled() {
        return;
    }
    let ts = now_nanos();
    with_subscriber(|s, tid| s.on_event(name, fields, ts, tid));
}

/// An RAII span: times the enclosed scope and reports it to the subscriber
/// on drop.  Construct with [`span!`] (or [`SpanGuard::start`]).  When no
/// subscriber is installed the guard is inert: no timestamp is taken and
/// drop is a no-op.
#[must_use = "a span measures the scope it is alive in; bind it to a variable"]
pub struct SpanGuard {
    name: &'static str,
    detail: Option<String>,
    id: u64,
    start: Option<Instant>,
    start_ts: u64,
}

impl SpanGuard {
    /// Opens a span (no detail label).
    pub fn start(name: &'static str) -> SpanGuard {
        SpanGuard::with_detail(name, None)
    }

    /// Opens a span with an optional detail label (e.g. an engine name or a
    /// worker index).  Pass `None` when disabled — [`span!`] only builds the
    /// label when a subscriber is installed.
    pub fn with_detail(name: &'static str, detail: Option<String>) -> SpanGuard {
        if !enabled() {
            return SpanGuard {
                name,
                detail: None,
                id: 0,
                start: None,
                start_ts: 0,
            };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let start_ts = now_nanos();
        with_subscriber(|s, tid| s.on_span_start(id, name, detail.as_deref(), start_ts, tid));
        SpanGuard {
            name,
            detail,
            id,
            start: Some(Instant::now()),
            start_ts,
        }
    }

    /// The span's process-unique id (`0` when the span is inert).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Nanoseconds since the trace epoch when the span opened.
    pub fn start_nanos(&self) -> u64 {
        self.start_ts
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur = start.elapsed().as_nanos() as u64;
            let ts = now_nanos();
            let detail = self.detail.take();
            with_subscriber(|s, tid| {
                s.on_span_end(self.id, self.name, detail.as_deref(), ts, dur, tid)
            });
        }
    }
}

/// Opens an RAII [`SpanGuard`] for the enclosing scope.
///
/// `span!("name")` opens a plain span; `span!("name", expr)` attaches a
/// detail label, with `expr` evaluated (and formatted with `to_string`)
/// **only when a subscriber is installed**.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::start($name)
    };
    ($name:expr, $detail:expr) => {{
        let detail = if $crate::enabled() {
            Some(($detail).to_string())
        } else {
            None
        };
        $crate::SpanGuard::with_detail($name, detail)
    }};
}

/// Emits a structured event with named fields:
/// `event!("db.hit", cone = hash, queries = n)`.  Field expressions are
/// evaluated **only when a subscriber is installed**.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::dispatch_event(
                $name,
                &[$((stringify!($key), $crate::Value::from($value))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The subscriber slot is process-global, so the tests of this crate run
    // under one lock to avoid cross-talk.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_sites_do_not_dispatch() {
        let _guard = TEST_LOCK.lock().unwrap();
        uninstall();
        let before = dispatch_count();
        counter("test.counter", 1);
        histogram("test.histogram", 42);
        event!("test.event", answer = 42u64);
        {
            let _span = span!("test.span");
        }
        {
            let _span = span!("test.span", format!("never built"));
        }
        assert_eq!(dispatch_count(), before, "no subscriber => no dispatch");
    }

    #[test]
    fn metrics_registry_aggregates() {
        let _guard = TEST_LOCK.lock().unwrap();
        let registry = Arc::new(MetricsRegistry::new());
        install(registry.clone());
        counter("test.widgets", 2);
        counter("test.widgets", 3);
        histogram("test.sizes", 7);
        event!("test.ping", n = 1u64);
        {
            let _span = span!("test.phase");
        }
        {
            let _span = span!("test.phase", "labelled");
        }
        uninstall();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("test.widgets"), 5);
        // Labelled spans aggregate under the plain name too, so phase totals
        // cover every label.
        assert_eq!(snap.span_count("test.phase"), 2);
        assert_eq!(snap.span_count("test.phase:labelled"), 1);
        assert!(snap.span_total_nanos("test.phase") > 0 || snap.span_count("test.phase") > 0);
        assert_eq!(snap.event_count("test.ping"), 1);
        let json = snap.to_json();
        assert!(json.contains("\"test.widgets\": 5"), "json: {json}");
    }

    #[test]
    fn jsonl_stream_validates() {
        let _guard = TEST_LOCK.lock().unwrap();
        let jsonl = Arc::new(JsonlSubscriber::new());
        install(jsonl.clone());
        {
            let _outer = span!("outer");
            {
                let _inner = span!("inner", 42u64);
            }
            counter("c", 1);
            event!("e", k = "v");
        }
        uninstall();
        let lines = jsonl.lines();
        assert!(lines.len() >= 6, "lines: {lines:?}");
        let check = validate_jsonl(lines.iter().map(String::as_str)).expect("valid trace");
        assert_eq!(check.spans_started, 2);
        assert_eq!(check.spans_ended, 2);
        assert!(check.max_depth >= 2);
    }

    #[test]
    fn jsonl_validator_rejects_unbalanced_and_nonmonotone() {
        let unbalanced = [r#"{"type":"span_start","id":1,"name":"a","ts":5,"tid":0}"#];
        assert!(validate_jsonl(unbalanced.iter().copied()).is_err());
        let nonmonotone = [
            r#"{"type":"event","name":"a","ts":10,"tid":0,"fields":{}}"#,
            r#"{"type":"event","name":"b","ts":4,"tid":0,"fields":{}}"#,
        ];
        assert!(validate_jsonl(nonmonotone.iter().copied()).is_err());
        let garbage = ["not json at all"];
        assert!(validate_jsonl(garbage.iter().copied()).is_err());
    }

    #[test]
    fn chrome_trace_exports_complete_events() {
        let _guard = TEST_LOCK.lock().unwrap();
        let chrome = Arc::new(ChromeTraceSubscriber::new());
        install(chrome.clone());
        {
            let _span = span!("chrome.phase");
        }
        counter("chrome.count", 2);
        uninstall();
        let json = chrome.to_json();
        assert!(json.starts_with("{\"traceEvents\":["), "json: {json}");
        assert!(json.contains("\"ph\":\"X\""), "complete event missing: {json}");
        assert!(json.contains("\"ph\":\"C\""), "counter event missing: {json}");
    }
}
