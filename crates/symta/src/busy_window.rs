//! Fixed-priority busy-window (response-time) analysis for a single resource.

use crate::event_model::StandardEventModel;
use tempo_arch::time::TimeValue;

/// Scheduling behaviour of the resource under analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResourceKind {
    /// Higher-priority arrivals preempt the running task.
    FixedPriorityPreemptive,
    /// The running task (or message transfer) always completes; lower-priority
    /// work can block a higher-priority arrival once.
    FixedPriorityNonPreemptive,
}

/// Parameters of one task (scenario step) mapped onto the resource.
#[derive(Clone, Debug)]
pub struct TaskParams {
    /// Worst-case execution (or transfer) time.
    pub wcet: TimeValue,
    /// Input event model.
    pub input: StandardEventModel,
    /// Priority (smaller = more important).
    pub priority: u32,
}

const MAX_ITERATIONS: usize = 10_000;

/// Computes a bound on the worst-case response time of `task` on a resource
/// shared with `others`, or `None` if the busy-window iteration diverges.
///
/// Tasks of *equal* priority are treated as mutual interference (conservative
/// for the non-deterministic schedulers of the paper).
pub fn response_time_bound(
    task: &TaskParams,
    others: &[TaskParams],
    kind: ResourceKind,
) -> Option<TimeValue> {
    let interferers: Vec<&TaskParams> = others
        .iter()
        .filter(|t| t.priority <= task.priority)
        .collect();
    // Blocking by at most one lower-priority job on non-preemptive resources.
    let blocking = match kind {
        ResourceKind::FixedPriorityPreemptive => TimeValue::ZERO,
        ResourceKind::FixedPriorityNonPreemptive => others
            .iter()
            .filter(|t| t.priority > task.priority)
            .map(|t| t.wcet)
            .max()
            .unwrap_or(TimeValue::ZERO),
    };

    // Multiple activations of the task itself can be outstanding when its
    // jitter exceeds its period; analyse the q-th activation in the busy
    // window and take the maximum response.
    let own_backlog = task.input.max_events_in(TimeValue::ZERO).max(1);
    let mut worst = TimeValue::ZERO;
    for q in 1..=own_backlog {
        let response = activation_response(task, &interferers, blocking, kind, q)?;
        if response > worst {
            worst = response;
        }
    }
    Some(worst)
}

/// Response time of the `q`-th activation within the level-i busy window.
fn activation_response(
    task: &TaskParams,
    interferers: &[&TaskParams],
    blocking: TimeValue,
    kind: ResourceKind,
    q: u64,
) -> Option<TimeValue> {
    let own_demand = task.wcet.scale(q as i128);
    // Fixed-point iteration on the busy-window length.
    let mut window = blocking + own_demand;
    for _ in 0..MAX_ITERATIONS {
        let interference_window = match kind {
            ResourceKind::FixedPriorityPreemptive => window,
            // Non-preemptive: interference can only delay the *start* of the
            // q-th activation; once started it runs to completion.
            ResourceKind::FixedPriorityNonPreemptive => {
                blocking + task.wcet.scale(q as i128 - 1) + interference(interferers, window)
            }
        };
        let next = match kind {
            ResourceKind::FixedPriorityPreemptive => {
                blocking + own_demand + interference(interferers, window)
            }
            ResourceKind::FixedPriorityNonPreemptive => interference_window + task.wcet,
        };
        if next == window {
            // Response of the q-th activation, measured from its earliest
            // possible release ((q-1)·P − J after the window start), plus the
            // input jitter that can delay the measured stimulus itself.
            let release_offset = task.input.period.scale(q as i128 - 1);
            let response = if window > release_offset {
                window - release_offset
            } else {
                task.wcet
            };
            return Some(response + task.input.jitter.min(task.input.period));
        }
        window = next;
        // Divergence guard: a busy window beyond 10^4 periods means overload.
        if window > task.input.period.scale(10_000) {
            return None;
        }
    }
    None
}

/// Total higher/equal-priority demand that can arrive in a window.
fn interference(interferers: &[&TaskParams], window: TimeValue) -> TimeValue {
    interferers.iter().fold(TimeValue::ZERO, |acc, t| {
        acc + t.wcet.scale(t.input.max_events_in(window) as i128)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(wcet_ms: i128, period_ms: i128, priority: u32) -> TaskParams {
        TaskParams {
            wcet: TimeValue::millis(wcet_ms),
            input: StandardEventModel::periodic(TimeValue::millis(period_ms)),
            priority,
        }
    }

    #[test]
    fn classic_rta_example() {
        // Liu & Layland style set: (C, P) = (1, 4), (2, 6), (3, 12), priorities
        // by rate.  Known response times: 1, 3, 10 (preemptive RTA).
        let t1 = task(1, 4, 0);
        let t2 = task(2, 6, 1);
        let t3 = task(3, 12, 2);
        let r1 = response_time_bound(&t1, &[t2.clone(), t3.clone()], ResourceKind::FixedPriorityPreemptive).unwrap();
        assert_eq!(r1, TimeValue::millis(1));
        let r2 = response_time_bound(&t2, &[t1.clone(), t3.clone()], ResourceKind::FixedPriorityPreemptive).unwrap();
        assert_eq!(r2, TimeValue::millis(3));
        let r3 = response_time_bound(&t3, &[t1, t2], ResourceKind::FixedPriorityPreemptive).unwrap();
        assert_eq!(r3, TimeValue::millis(10));
    }

    #[test]
    fn non_preemptive_blocking_added() {
        let hi = task(1, 10, 0);
        let lo = task(5, 50, 1);
        let r = response_time_bound(&hi, &[lo], ResourceKind::FixedPriorityNonPreemptive).unwrap();
        // Blocked by the 5 ms job, then runs 1 ms.
        assert_eq!(r, TimeValue::millis(6));
    }

    #[test]
    fn jitter_increases_response() {
        let mut hi = task(1, 10, 0);
        let lo = task(4, 20, 1);
        let base = response_time_bound(&lo, &[hi.clone()], ResourceKind::FixedPriorityPreemptive).unwrap();
        hi.input = StandardEventModel {
            period: TimeValue::millis(10),
            jitter: TimeValue::millis(10),
            min_distance: TimeValue::ZERO,
        };
        let with_jitter =
            response_time_bound(&lo, &[hi], ResourceKind::FixedPriorityPreemptive).unwrap();
        assert!(with_jitter >= base);
    }

    #[test]
    fn overload_detected_as_divergence() {
        // An overloaded higher-priority stream (11 ms of work every 10 ms)
        // makes the lower-priority busy window grow without bound.
        let lo = task(1, 100, 1);
        let hi = task(11, 10, 0);
        assert!(response_time_bound(&lo, &[hi], ResourceKind::FixedPriorityPreemptive).is_none());
    }

    #[test]
    fn isolated_task_bound_is_wcet() {
        let t = task(3, 100, 0);
        let r = response_time_bound(&t, &[], ResourceKind::FixedPriorityPreemptive).unwrap();
        assert_eq!(r, TimeValue::millis(3));
        let r = response_time_bound(&t, &[], ResourceKind::FixedPriorityNonPreemptive).unwrap();
        assert_eq!(r, TimeValue::millis(3));
    }
}
