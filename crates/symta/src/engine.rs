//! The [`Engine`] implementation of the SymTA/S-style baseline.

use crate::{analyze_all_impl, analyze_requirement_impl, SymtaError, SymtaReport};
use tempo_arch::engine::{
    run_upper_bound_engine, upper_bound_row, BoundKind, Capabilities, Engine, EngineError,
    EngineReport, Query, RequirementEstimate, RunContext,
};
use tempo_arch::model::ArchitectureModel;

/// The SymTA/S engine: conservative upper bounds from compositional
/// busy-window analysis with event-model propagation.
#[derive(Clone, Copy, Debug, Default)]
pub struct SymtaEngine;

impl From<SymtaError> for EngineError {
    fn from(e: SymtaError) -> Self {
        match e {
            SymtaError::Model(m) => EngineError::Model(m),
            SymtaError::UnknownRequirement(n) => EngineError::UnknownRequirement(n),
            SymtaError::Overload { resource } => {
                EngineError::Overload(format!("resource `{resource}` is overloaded"))
            }
            SymtaError::NoConvergence => {
                EngineError::Internal("busy-window iteration did not converge".into())
            }
        }
    }
}

fn estimate_row(model: &ArchitectureModel, report: &SymtaReport) -> RequirementEstimate {
    upper_bound_row(model, &report.requirement, report.wcrt_bound)
}

impl Engine for SymtaEngine {
    fn name(&self) -> &'static str {
        "symta"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            bound: BoundKind::Upper,
            wcrt: true,
            deadline_check: true,
            queue_bounds: false,
        }
    }

    fn run(
        &self,
        model: &ArchitectureModel,
        query: &Query,
        ctx: &RunContext,
    ) -> Result<EngineReport, EngineError> {
        run_upper_bound_engine(
            self.name(),
            model,
            query,
            ctx,
            &mut |requirement| Ok(estimate_row(model, &analyze_requirement_impl(model, requirement)?)),
            &mut || {
                Ok(analyze_all_impl(model)?
                    .iter()
                    .map(|r| estimate_row(model, r))
                    .collect())
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_arch::engine::Estimate;
    use tempo_arch::model::{
        BusArbitration, EventModel, MeasurePoint, Requirement, Scenario, SchedulingPolicy, Step,
    };
    use tempo_arch::time::TimeValue;

    #[test]
    fn engine_reports_upper_bounds_and_declines_tdma() {
        let mut m = ArchitectureModel::new("symta-engine");
        let cpu = m.add_processor("CPU", 1, SchedulingPolicy::FixedPriorityPreemptive);
        let s = m.add_scenario(Scenario {
            name: "task".into(),
            stimulus: EventModel::Periodic {
                period: TimeValue::millis(20),
            },
            priority: 0,
            steps: vec![Step::Execute {
                operation: "work".into(),
                instructions: 2_000,
                on: cpu,
            }],
        });
        m.add_requirement(Requirement {
            name: "rt".into(),
            scenario: s,
            from: MeasurePoint::Stimulus,
            to: MeasurePoint::AfterStep(0),
            deadline: TimeValue::millis(20),
        });
        let engine = SymtaEngine;
        let report = engine
            .run(&m, &Query::WcrtAll, &RunContext::default())
            .unwrap();
        assert_eq!(report.estimates.len(), 1);
        assert!(matches!(
            report.estimates[0].estimate,
            Estimate::UpperBound(_)
        ));
        assert_eq!(report.estimates[0].meets_deadline, Some(true));
        m.add_bus(
            "TDMA",
            8_000,
            BusArbitration::Tdma {
                slot: TimeValue::millis(4),
            },
        );
        assert!(matches!(
            engine.run(&m, &Query::WcrtAll, &RunContext::default()),
            Err(EngineError::Unsupported { .. })
        ));
    }
}
