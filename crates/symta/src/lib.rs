//! # tempo-symta — SymTA/S-style compositional busy-window analysis
//!
//! This crate is the stand-in for the commercial SymTA/S tool used as a
//! comparator in Section 5 of the paper.  It implements the published
//! technique behind the tool (Richter et al.): classical fixed-priority
//! response-time analysis with standard event models `(P, J, D)` per resource,
//! composed at the system level by propagating *output* event models (the
//! response-time jitter of a step becomes additional input jitter of the next
//! step) until a global fixed point is reached.
//!
//! The analysis is conservative: it computes safe upper bounds on worst-case
//! response times.  On the case study the expected relationship is
//!
//! ```text
//! simulation (tempo-sim)  ≤  exact WCRT (tempo-arch/tempo-check)  ≤  SymTA/S bound  ≈  MPA bound
//! ```
//!
//! which is exactly the qualitative picture reported in Table 2.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tempo_arch::model::{
    ArchitectureModel, MeasurePoint, Requirement, SchedulingPolicy, Step,
};
use tempo_arch::time::TimeValue;

mod event_model;
mod busy_window;
mod engine;

pub use busy_window::{response_time_bound, ResourceKind, TaskParams};
pub use engine::SymtaEngine;
pub use event_model::StandardEventModel;

/// The result of a SymTA/S-style end-to-end analysis of one requirement.
#[derive(Clone, Debug)]
pub struct SymtaReport {
    /// Requirement name.
    pub requirement: String,
    /// Upper bound on the end-to-end worst-case response time.
    pub wcrt_bound: TimeValue,
    /// Per-step response-time bounds (same order as the measured steps).
    pub step_bounds: Vec<TimeValue>,
    /// Number of global fixed-point iterations performed.
    pub iterations: usize,
}

impl SymtaReport {
    /// The bound as a typed [`tempo_arch::engine::Estimate`]: the busy-window
    /// analysis always produces conservative upper bounds.
    pub fn estimate(&self) -> tempo_arch::engine::Estimate {
        tempo_arch::engine::Estimate::UpperBound(self.wcrt_bound)
    }

    /// The bound in milliseconds (routed through
    /// [`Estimate::as_millis_f64`](tempo_arch::engine::Estimate::as_millis_f64),
    /// the shared conversion path).
    pub fn wcrt_ms(&self) -> f64 {
        self.estimate().as_millis_f64()
    }
}

impl std::fmt::Display for SymtaReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: WCRT {}", self.requirement, self.estimate())
    }
}

/// Errors of the analysis.
#[derive(Clone, Debug, PartialEq)]
pub enum SymtaError {
    /// The underlying architecture model is invalid.
    Model(String),
    /// A requirement name could not be resolved.
    UnknownRequirement(String),
    /// A resource is overloaded (utilisation ≥ 1), so no finite bound exists.
    Overload {
        /// The overloaded resource.
        resource: String,
    },
    /// The busy-window iteration did not converge within the iteration budget.
    NoConvergence,
}

impl std::fmt::Display for SymtaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymtaError::Model(m) => write!(f, "invalid model: {m}"),
            SymtaError::UnknownRequirement(n) => write!(f, "unknown requirement `{n}`"),
            SymtaError::Overload { resource } => {
                write!(f, "resource `{resource}` is overloaded; no finite response time exists")
            }
            SymtaError::NoConvergence => write!(f, "busy-window iteration did not converge"),
        }
    }
}

impl std::error::Error for SymtaError {}

/// Internal task descriptor: one scenario step mapped onto its resource.
#[derive(Clone, Debug)]
struct SystemTask {
    scenario: usize,
    step: usize,
    /// Resource index: processors first, then buses.
    resource: usize,
    wcet: TimeValue,
    priority: u32,
    input: StandardEventModel,
    response: TimeValue,
}

/// Analyzes one requirement of the model and returns a conservative
/// end-to-end WCRT bound; the body behind [`SymtaEngine`], which answers the
/// same query with typed estimates through the `tempo_arch::engine::Engine`
/// seam.
pub(crate) fn analyze_requirement_impl(
    model: &ArchitectureModel,
    requirement_name: &str,
) -> Result<SymtaReport, SymtaError> {
    model
        .validate()
        .map_err(|e| SymtaError::Model(e.to_string()))?;
    let req = model
        .requirement_by_name(requirement_name)
        .ok_or_else(|| SymtaError::UnknownRequirement(requirement_name.to_string()))?;
    let (tasks, iterations) = system_fixed_point(model)?;
    let (first, last) = measured_range(model, req);
    let step_bounds: Vec<TimeValue> = tasks
        .iter()
        .filter(|t| t.scenario == req.scenario.0 && t.step >= first && t.step <= last)
        .map(|t| t.response)
        .collect();
    let wcrt_bound = step_bounds
        .iter()
        .fold(TimeValue::ZERO, |acc, t| acc + *t);
    Ok(SymtaReport {
        requirement: req.name.clone(),
        wcrt_bound,
        step_bounds,
        iterations,
    })
}

/// Analyzes every requirement of the model; the body behind [`SymtaEngine`]'s
/// `Query::WcrtAll`.
pub(crate) fn analyze_all_impl(model: &ArchitectureModel) -> Result<Vec<SymtaReport>, SymtaError> {
    model
        .requirements
        .iter()
        .map(|r| analyze_requirement_impl(model, &r.name))
        .collect()
}

fn measured_range(model: &ArchitectureModel, req: &Requirement) -> (usize, usize) {
    let last = match req.to {
        MeasurePoint::AfterStep(i) => i,
        MeasurePoint::Stimulus => 0,
    };
    let first = match req.from {
        MeasurePoint::Stimulus => 0,
        // The latency from the completion of step `i` starts at step `i + 1`.
        MeasurePoint::AfterStep(i) => (i + 1).min(last),
    };
    let _ = model;
    (first, last)
}

/// Builds the task set and runs the global fixed-point iteration: response
/// times determine output jitters, which feed the next steps' input event
/// models, which changes interference, and so on until nothing moves.
fn system_fixed_point(model: &ArchitectureModel) -> Result<(Vec<SystemTask>, usize), SymtaError> {
    let num_procs = model.processors.len();
    let mut tasks: Vec<SystemTask> = Vec::new();
    for (si, s) in model.scenarios.iter().enumerate() {
        let input = StandardEventModel::from_event_model(&s.stimulus);
        for (sti, step) in s.steps.iter().enumerate() {
            let resource = match step {
                Step::Execute { on, .. } => on.0,
                Step::Transfer { over, .. } => num_procs + over.0,
            };
            tasks.push(SystemTask {
                scenario: si,
                step: sti,
                resource,
                wcet: model.step_service_time(step),
                priority: s.priority,
                input: input.clone(),
                response: model.step_service_time(step),
            });
        }
    }

    // Utilisation check per resource.
    for (ri, name) in resource_names(model).iter().enumerate() {
        let u: f64 = tasks
            .iter()
            .filter(|t| t.resource == ri)
            .map(|t| t.wcet.as_micros_f64() / t.input.period.as_micros_f64())
            .sum();
        if u >= 1.0 {
            return Err(SymtaError::Overload {
                resource: name.clone(),
            });
        }
    }

    let max_iterations = 64;
    for iteration in 0..max_iterations {
        let mut changed = false;
        // 1. response-time analysis per resource, given current input models.
        for i in 0..tasks.len() {
            let kind = resource_kind(model, tasks[i].resource);
            let params = TaskParams {
                wcet: tasks[i].wcet,
                input: tasks[i].input.clone(),
                priority: tasks[i].priority,
            };
            let interferers: Vec<TaskParams> = tasks
                .iter()
                .enumerate()
                .filter(|(j, t)| *j != i && t.resource == tasks[i].resource)
                .map(|(_, t)| TaskParams {
                    wcet: t.wcet,
                    input: t.input.clone(),
                    priority: t.priority,
                })
                .collect();
            let r = response_time_bound(&params, &interferers, kind)
                .ok_or(SymtaError::NoConvergence)?;
            if r != tasks[i].response {
                tasks[i].response = r;
                changed = true;
            }
        }
        // 2. event-model propagation along every scenario chain: the input of
        // step k+1 is the stimulus model with jitter increased by the sum of
        // the response-time jitters of steps 0..=k (response minus best case).
        for si in 0..model.scenarios.len() {
            let stimulus = StandardEventModel::from_event_model(&model.scenarios[si].stimulus);
            let mut accumulated_jitter = stimulus.jitter;
            let steps = model.scenarios[si].steps.len();
            for sti in 0..steps {
                let idx = tasks
                    .iter()
                    .position(|t| t.scenario == si && t.step == sti)
                    .expect("task exists");
                if sti > 0 {
                    let new_input = StandardEventModel {
                        period: stimulus.period,
                        jitter: accumulated_jitter,
                        min_distance: TimeValue::ZERO,
                    };
                    if new_input != tasks[idx].input {
                        tasks[idx].input = new_input;
                        changed = true;
                    }
                }
                // Best-case response is the WCET itself (no interference).
                let response_jitter = tasks[idx].response - tasks[idx].wcet;
                accumulated_jitter = accumulated_jitter + response_jitter;
            }
        }
        if !changed {
            return Ok((tasks, iteration + 1));
        }
    }
    Err(SymtaError::NoConvergence)
}

fn resource_names(model: &ArchitectureModel) -> Vec<String> {
    model
        .processors
        .iter()
        .map(|p| p.name.clone())
        .chain(model.buses.iter().map(|b| b.name.clone()))
        .collect()
}

fn resource_kind(model: &ArchitectureModel, resource: usize) -> ResourceKind {
    if resource < model.processors.len() {
        match model.processors[resource].policy {
            SchedulingPolicy::FixedPriorityPreemptive => ResourceKind::FixedPriorityPreemptive,
            SchedulingPolicy::FixedPriorityNonPreemptive | SchedulingPolicy::NonPreemptiveNd => {
                ResourceKind::FixedPriorityNonPreemptive
            }
        }
    } else {
        // Buses never preempt a transfer in progress.
        ResourceKind::FixedPriorityNonPreemptive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_arch::model::{BusArbitration, EventModel, Scenario};

    fn simple_model(policy: SchedulingPolicy) -> ArchitectureModel {
        let mut m = ArchitectureModel::new("symta-test");
        let cpu = m.add_processor("CPU", 1, policy);
        let hi = m.add_scenario(Scenario {
            name: "hi".into(),
            stimulus: EventModel::Periodic {
                period: TimeValue::millis(20),
            },
            priority: 0,
            steps: vec![Step::Execute {
                operation: "short".into(),
                instructions: 2_000,
                on: cpu,
            }],
        });
        let lo = m.add_scenario(Scenario {
            name: "lo".into(),
            stimulus: EventModel::Periodic {
                period: TimeValue::millis(50),
            },
            priority: 1,
            steps: vec![Step::Execute {
                operation: "long".into(),
                instructions: 10_000,
                on: cpu,
            }],
        });
        m.add_requirement(Requirement {
            name: "hi-rt".into(),
            scenario: hi,
            from: MeasurePoint::Stimulus,
            to: MeasurePoint::AfterStep(0),
            deadline: TimeValue::millis(20),
        });
        m.add_requirement(Requirement {
            name: "lo-rt".into(),
            scenario: lo,
            from: MeasurePoint::Stimulus,
            to: MeasurePoint::AfterStep(0),
            deadline: TimeValue::millis(50),
        });
        m
    }

    #[test]
    fn preemptive_high_priority_is_isolated() {
        let m = simple_model(SchedulingPolicy::FixedPriorityPreemptive);
        let hi = analyze_requirement_impl(&m, "hi-rt").unwrap();
        // Classic RTA: the highest-priority task's bound is its own WCET.
        assert_eq!(hi.wcrt_bound, TimeValue::millis(2));
        let lo = analyze_requirement_impl(&m, "lo-rt").unwrap();
        // The low-priority task suffers one preemption: 10 + 2 = 12 ms.
        assert_eq!(lo.wcrt_bound, TimeValue::millis(12));
    }

    #[test]
    fn non_preemptive_adds_blocking() {
        let m = simple_model(SchedulingPolicy::FixedPriorityNonPreemptive);
        let hi = analyze_requirement_impl(&m, "hi-rt").unwrap();
        // Blocking by the longest lower-priority task: 10 + 2 = 12 ms.
        assert_eq!(hi.wcrt_bound, TimeValue::millis(12));
    }

    #[test]
    fn bound_dominates_exact_wcrt() {
        // The SymTA/S bound must never be below the exact timed-automata WCRT.
        for policy in [
            SchedulingPolicy::FixedPriorityPreemptive,
            SchedulingPolicy::FixedPriorityNonPreemptive,
        ] {
            let m = simple_model(policy);
            for name in ["hi-rt", "lo-rt"] {
                let exact = tempo_arch::engine::Session::new(
                    &m,
                    tempo_arch::AnalysisConfig::default(),
                )
                .unwrap()
                .wcrt(name)
                .unwrap()
                .wcrt
                .unwrap();
                let bound = analyze_requirement_impl(&m, name).unwrap().wcrt_bound;
                assert!(
                    bound >= exact,
                    "{policy:?} {name}: bound {bound} < exact {exact}"
                );
            }
        }
    }

    #[test]
    fn overload_is_detected() {
        let mut m = simple_model(SchedulingPolicy::FixedPriorityPreemptive);
        // Inflate the low-priority task until the CPU is overloaded.
        if let Step::Execute { instructions, .. } = &mut m.scenarios[1].steps[0] {
            *instructions = 60_000; // 60 ms every 50 ms
        }
        assert!(matches!(
            analyze_requirement_impl(&m, "lo-rt"),
            Err(SymtaError::Overload { .. })
        ));
    }

    #[test]
    fn unknown_requirement_is_reported() {
        let m = simple_model(SchedulingPolicy::FixedPriorityPreemptive);
        assert!(matches!(
            analyze_requirement_impl(&m, "nope"),
            Err(SymtaError::UnknownRequirement(_))
        ));
    }

    #[test]
    fn multi_hop_chain_accumulates_bounds() {
        let mut m = ArchitectureModel::new("chain");
        let cpu = m.add_processor("CPU", 1, SchedulingPolicy::FixedPriorityPreemptive);
        let bus = m.add_bus("BUS", 8_000, BusArbitration::FixedPriority);
        let s = m.add_scenario(Scenario {
            name: "pipe".into(),
            stimulus: EventModel::Periodic {
                period: TimeValue::millis(100),
            },
            priority: 0,
            steps: vec![
                Step::Execute {
                    operation: "a".into(),
                    instructions: 5_000,
                    on: cpu,
                },
                Step::Transfer {
                    message: "m".into(),
                    bytes: 10,
                    over: bus,
                },
                Step::Execute {
                    operation: "b".into(),
                    instructions: 3_000,
                    on: cpu,
                },
            ],
        });
        m.add_requirement(Requirement {
            name: "e2e".into(),
            scenario: s,
            from: MeasurePoint::Stimulus,
            to: MeasurePoint::AfterStep(2),
            deadline: TimeValue::millis(100),
        });
        m.add_requirement(Requirement {
            name: "tail".into(),
            scenario: s,
            from: MeasurePoint::AfterStep(1),
            to: MeasurePoint::AfterStep(2),
            deadline: TimeValue::millis(100),
        });
        let e2e = analyze_requirement_impl(&m, "e2e").unwrap();
        // 5 ms + 10 ms + 3 ms plus possible self-interference terms; at least
        // the sum of service times, and covering all three steps.
        assert!(e2e.wcrt_bound >= TimeValue::millis(18));
        assert_eq!(e2e.step_bounds.len(), 3);
        let tail = analyze_requirement_impl(&m, "tail").unwrap();
        assert_eq!(tail.step_bounds.len(), 1);
        assert!(tail.wcrt_bound < e2e.wcrt_bound);
        let all = analyze_all_impl(&m).unwrap();
        assert_eq!(all.len(), 2);
    }
}
