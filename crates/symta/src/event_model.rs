//! Standard event models `(P, J, D)` as used by SymTA/S.

use tempo_arch::model::EventModel;
use tempo_arch::time::TimeValue;

/// The standard event model: period `P`, jitter `J` and minimal distance `D`.
///
/// The number of events that can arrive in any half-open window of length `Δ`
/// is bounded by `η⁺(Δ) = min( ⌈(Δ + J)/P⌉, ⌈Δ/D⌉ )` (the second term only
/// when `D > 0`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StandardEventModel {
    /// Period.
    pub period: TimeValue,
    /// Jitter.
    pub jitter: TimeValue,
    /// Minimal distance between events (0 = unconstrained).
    pub min_distance: TimeValue,
}

impl StandardEventModel {
    /// A strictly periodic stream.
    pub fn periodic(period: TimeValue) -> StandardEventModel {
        StandardEventModel {
            period,
            jitter: TimeValue::ZERO,
            min_distance: TimeValue::ZERO,
        }
    }

    /// Converts one of the architecture-level event models into the standard
    /// `(P, J, D)` representation.
    pub fn from_event_model(model: &EventModel) -> StandardEventModel {
        match model {
            EventModel::PeriodicOffset { period, .. } | EventModel::Periodic { period } => {
                StandardEventModel::periodic(*period)
            }
            EventModel::Sporadic { min_interarrival } => StandardEventModel::periodic(*min_interarrival),
            EventModel::PeriodicJitter { period, jitter } => StandardEventModel {
                period: *period,
                jitter: *jitter,
                min_distance: if *jitter >= *period {
                    TimeValue::ZERO
                } else {
                    *period - *jitter
                },
            },
            EventModel::Burst {
                period,
                jitter,
                min_separation,
            } => StandardEventModel {
                period: *period,
                jitter: *jitter,
                min_distance: *min_separation,
            },
        }
    }

    /// Maximum number of events in any window of length `delta` (the upper
    /// arrival function `η⁺`).
    pub fn max_events_in(&self, delta: TimeValue) -> u64 {
        if delta.is_zero() {
            // η⁺ is right-continuous: an arbitrarily small window can already
            // contain the whole backlog allowed by the jitter.
            return self.max_events_in(TimeValue::ratio_us(1, 1_000_000));
        }
        let p = self.period.as_micros_f64();
        let j = self.jitter.as_micros_f64();
        let d = self.min_distance.as_micros_f64();
        let dl = delta.as_micros_f64();
        let by_period = ((dl + j) / p).ceil() as u64;
        if d > 0.0 {
            let by_distance = (dl / d).ceil() as u64;
            by_period.min(by_distance)
        } else {
            by_period
        }
    }

    /// Minimum number of events in any window of length `delta` (the lower
    /// arrival function `η⁻`).
    pub fn min_events_in(&self, delta: TimeValue) -> u64 {
        let p = self.period.as_micros_f64();
        let j = self.jitter.as_micros_f64();
        let dl = delta.as_micros_f64();
        let v = ((dl - j) / p).floor();
        if v.is_sign_negative() {
            0
        } else {
            v as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_counts() {
        let m = StandardEventModel::periodic(TimeValue::millis(10));
        assert_eq!(m.max_events_in(TimeValue::millis(10)), 1);
        assert_eq!(m.max_events_in(TimeValue::millis(11)), 2);
        assert_eq!(m.max_events_in(TimeValue::millis(35)), 4);
        assert_eq!(m.min_events_in(TimeValue::millis(35)), 3);
        assert_eq!(m.min_events_in(TimeValue::millis(9)), 0);
    }

    #[test]
    fn jitter_allows_bursts() {
        let m = StandardEventModel {
            period: TimeValue::millis(10),
            jitter: TimeValue::millis(20),
            min_distance: TimeValue::millis(1),
        };
        // With J = 2P, up to 3 events can pile up at once, but the minimal
        // distance limits a 2 ms window to 2 events.
        assert_eq!(m.max_events_in(TimeValue::millis(2)), 2);
        assert!(m.max_events_in(TimeValue::millis(30)) >= 5);
        assert_eq!(m.min_events_in(TimeValue::millis(25)), 0);
    }

    #[test]
    fn conversion_from_architecture_models() {
        let p = TimeValue::millis(10);
        let m = StandardEventModel::from_event_model(&EventModel::Periodic { period: p });
        assert_eq!(m, StandardEventModel::periodic(p));
        let m = StandardEventModel::from_event_model(&EventModel::PeriodicJitter {
            period: p,
            jitter: TimeValue::millis(4),
        });
        assert_eq!(m.jitter, TimeValue::millis(4));
        assert_eq!(m.min_distance, TimeValue::millis(6));
        let m = StandardEventModel::from_event_model(&EventModel::Burst {
            period: p,
            jitter: TimeValue::millis(20),
            min_separation: TimeValue::millis(1),
        });
        assert_eq!(m.min_distance, TimeValue::millis(1));
        let m = StandardEventModel::from_event_model(&EventModel::Sporadic {
            min_interarrival: p,
        });
        assert_eq!(m.period, p);
    }

    #[test]
    fn zero_window_reflects_backlog() {
        let m = StandardEventModel {
            period: TimeValue::millis(10),
            jitter: TimeValue::millis(25),
            min_distance: TimeValue::ZERO,
        };
        // 25 ms of jitter lets ceil((0+25)/10) = 3 events coincide.
        assert_eq!(m.max_events_in(TimeValue::ZERO), 3);
    }
}
