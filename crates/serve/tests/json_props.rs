//! Property-based round-trip tests for the protocol's JSON layer:
//! `parse(print(v))` must reconstruct any (finite-float) value exactly, and
//! the canonical printer must be a fixed point of `print ∘ parse`.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tempo_serve::json::{parse, JsonValue};

/// Strings mixing plain text with every escape class the printer handles.
fn json_string() -> BoxedStrategy<String> {
    prop_oneof![
        Just(String::new()),
        Just("plain".to_string()),
        Just("with \"quotes\" and \\backslash\\".to_string()),
        Just("line\nbreak\ttab\rreturn".to_string()),
        Just("control \u{0001}\u{001f} chars".to_string()),
        Just("unicode: żółć — 🦀 ✓".to_string()),
        Just("slash / and null \u{0000} byte".to_string()),
        "[a-zA-Z0-9_ ]{0,12}",
    ]
    .boxed()
}

/// Integers spanning the exact `i128` range the wire relies on (`TimeValue`
/// numerators, cone hashes).
fn json_int() -> BoxedStrategy<i128> {
    prop_oneof![
        Just(0i128),
        Just(i128::MAX),
        Just(i128::MIN),
        Just(u64::MAX as i128),
        Just(-(u64::MAX as i128)),
        (-1_000_000_000i64..1_000_000_000).prop_map(|v| v as i128),
    ]
    .boxed()
}

/// Finite floats only (JSON cannot carry NaN/∞); dyadic rationals print and
/// re-parse exactly under shortest-representation formatting.
fn json_float() -> BoxedStrategy<f64> {
    prop_oneof![
        Just(0.5f64),
        Just(-2.25f64),
        Just(1.0e30f64),
        Just(-1.5e-12f64),
        Just(f64::MAX),
        Just(f64::MIN_POSITIVE),
        Just(-0.0f64),
        Just(3.0f64),
        (-1_000_000i64..1_000_000).prop_map(|v| v as f64 / 64.0),
    ]
    .boxed()
}

fn json_leaf() -> BoxedStrategy<JsonValue> {
    prop_oneof![
        Just(JsonValue::Null),
        Just(JsonValue::Bool(true)),
        Just(JsonValue::Bool(false)),
        json_int().prop_map(JsonValue::Int),
        json_float().prop_map(JsonValue::Float),
        json_string().prop_map(JsonValue::Str),
    ]
    .boxed()
}

fn json_value() -> BoxedStrategy<JsonValue> {
    json_leaf()
        .prop_recursive(4, 48, 4, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..5).prop_map(JsonValue::Array),
                prop::collection::vec((json_string(), inner), 0..5).prop_map(|pairs| {
                    JsonValue::Object(pairs.into_iter().collect::<BTreeMap<_, _>>())
                }),
            ]
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse ∘ print` is the identity on finite-float values.
    #[test]
    fn print_then_parse_is_identity(v in json_value()) {
        let text = v.print();
        let back = parse(&text)
            .unwrap_or_else(|e| panic!("re-parse failed: {e:?}\n--- printed ---\n{text}"));
        prop_assert_eq!(&v, &back, "printed text:\n{}", text);
    }

    /// The canonical printer is a fixed point: `print(parse(print(v)))`
    /// equals `print(v)` byte for byte — the property the serve differential's
    /// answer keys rely on.
    #[test]
    fn printing_is_canonical(v in json_value()) {
        let text = v.print();
        let reprinted = parse(&text).unwrap().print();
        prop_assert_eq!(text, reprinted);
    }

    /// The `Int`/`Float` distinction survives: integral floats print with a
    /// fraction and come back as floats, never as ints.
    #[test]
    fn integral_floats_stay_floats(i in -1_000_000i64..1_000_000) {
        let v = JsonValue::Float(i as f64);
        let back = parse(&v.print()).unwrap();
        prop_assert_eq!(back, v);
        let w = JsonValue::Int(i as i128);
        let back = parse(&w.print()).unwrap();
        prop_assert_eq!(back, w);
    }
}

/// Deterministic regressions: inputs whose printed form exercises escape
/// sequences, nesting, and large magnitudes at once.
#[test]
fn kitchen_sink_round_trips() {
    let v = JsonValue::obj([
        ("empty", JsonValue::object()),
        (
            "nested",
            JsonValue::Array(vec![
                JsonValue::Null,
                JsonValue::obj([("k\n", JsonValue::Int(i128::MIN))]),
                JsonValue::Array(vec![JsonValue::Float(-0.0), JsonValue::Str("🦀".into())]),
            ]),
        ),
        ("big", JsonValue::Int(i128::MAX)),
    ]);
    let text = v.print();
    assert_eq!(parse(&text).unwrap(), v);
    assert_eq!(parse(&text).unwrap().print(), text);
}
