//! The `tempo-serve` daemon binary.
//!
//! Modes:
//!
//! * default / `--stdio`  — serve one connection over stdin/stdout.
//! * `--listen ADDR`      — serve TCP connections until a client sends
//!   `shutdown`.
//! * `--drive ADDR`       — connect as a client and run a self-check drive
//!   (load a sample model, batched queries, an in-place model edit, stats);
//!   exits non-zero on any failure.  Used by CI to exercise a loopback
//!   daemon end to end.
//!
//! Options: `--workers N`, `--queue-cap N`, `--budget-ms N` (default
//! per-request wall budget).

use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;
use tempo_arch::engine::Query;
use tempo_arch::model::{
    ArchitectureModel, EventModel, MeasurePoint, Requirement, Scenario, SchedulingPolicy, Step,
};
use tempo_arch::time::TimeValue;
use tempo_serve::{Client, JsonValue, Server, ServerConfig};

enum Mode {
    Stdio,
    Listen(String),
    Drive(String),
}

fn usage() -> &'static str {
    "usage: tempo-serve [--stdio | --listen ADDR | --drive ADDR] \
     [--workers N] [--queue-cap N] [--budget-ms N]"
}

fn main() -> ExitCode {
    let mut mode = Mode::Stdio;
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => mode = Mode::Stdio,
            "--listen" => match args.next() {
                Some(addr) => mode = Mode::Listen(addr),
                None => return fail(usage()),
            },
            "--drive" => match args.next() {
                Some(addr) => mode = Mode::Drive(addr),
                None => return fail(usage()),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.workers = n,
                None => return fail("--workers needs a positive integer"),
            },
            "--queue-cap" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.queue_cap = n,
                None => return fail("--queue-cap needs a positive integer"),
            },
            "--budget-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => cfg.default_wall_budget = Some(Duration::from_millis(ms)),
                None => return fail("--budget-ms needs a positive integer"),
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    match mode {
        Mode::Stdio => {
            let server = Server::new(cfg);
            let stdin = std::io::stdin().lock();
            server.serve_connection(stdin, std::io::stdout());
            server.begin_shutdown();
            server.join();
            ExitCode::SUCCESS
        }
        Mode::Listen(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => return fail(&format!("cannot bind {addr}: {e}")),
            };
            eprintln!(
                "tempo-serve listening on {}",
                listener.local_addr().map_or(addr, |a| a.to_string())
            );
            let server = Server::new(cfg);
            if let Err(e) = server.listen(listener) {
                return fail(&format!("accept loop failed: {e}"));
            }
            server.join();
            ExitCode::SUCCESS
        }
        Mode::Drive(addr) => match drive(&addr) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("tempo-serve: {msg}");
    ExitCode::FAILURE
}

/// A small two-subsystem model for the self-check drive.  Parameterized by
/// the control step's instruction count so an edit changes only the control
/// cone: scaling a processor's MIPS instead would rescale durations and move
/// the quantizer tick, soundly invalidating the filter cone too.
fn drive_model(ctl_instructions: u64) -> ArchitectureModel {
    let mut m = ArchitectureModel::new("drive");
    let cpu = m.add_processor("CPU", 100, SchedulingPolicy::FixedPriorityPreemptive);
    let dsp = m.add_processor("DSP", 50, SchedulingPolicy::FixedPriorityNonPreemptive);
    let a = m.add_scenario(Scenario {
        name: "control".into(),
        stimulus: EventModel::Periodic {
            period: TimeValue::millis(10),
        },
        priority: 2,
        steps: vec![Step::Execute {
            operation: "ctl".into(),
            instructions: ctl_instructions,
            on: cpu,
        }],
    });
    let b = m.add_scenario(Scenario {
        name: "filter".into(),
        stimulus: EventModel::PeriodicJitter {
            period: TimeValue::millis(20),
            jitter: TimeValue::millis(3),
        },
        priority: 1,
        steps: vec![Step::Execute {
            operation: "fir".into(),
            instructions: 4_000,
            on: dsp,
        }],
    });
    m.add_requirement(Requirement {
        name: "control-latency".into(),
        scenario: a,
        from: MeasurePoint::Stimulus,
        to: MeasurePoint::AfterStep(0),
        deadline: TimeValue::millis(10),
    });
    m.add_requirement(Requirement {
        name: "filter-latency".into(),
        scenario: b,
        from: MeasurePoint::Stimulus,
        to: MeasurePoint::AfterStep(0),
        deadline: TimeValue::millis(20),
    });
    m
}

fn expect(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!("drive check failed: {what}"))
    }
}

fn drive(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let io = |e: std::io::Error| format!("transport: {e}");
    let wire = |e: tempo_serve::WireError| format!("server error: {e}");

    let model = drive_model(2_000);
    client.load_model(&model).map_err(io)?.map_err(wire)?;

    // A batch covering the requirement set exactly collapses to one WcrtAll.
    let queries: Vec<Query> = model
        .requirements
        .iter()
        .map(|r| Query::wcrt(&r.name))
        .collect();
    let batch = client
        .query_batch("drive", &queries, &Default::default())
        .map_err(io)?
        .map_err(wire)?;
    expect(
        batch.get("batched").and_then(JsonValue::as_bool) == Some(true),
        "full-cover batch was not collapsed",
    )?;
    let results = batch
        .get("results")
        .and_then(JsonValue::as_array)
        .ok_or("batch response has no results")?;
    expect(results.len() == queries.len(), "one result per query")?;
    for r in results {
        expect(
            r.get("ok").and_then(JsonValue::as_bool) == Some(true),
            "batched query succeeded",
        )?;
    }

    // Edit the model in place: a longer control step changes the control
    // cone only, so the filter requirement answers warm.  2 000 → 6 000
    // instructions is 20 µs → 60 µs on the 100-MIPS CPU; both are odd
    // multiples of 20 µs, so the whole-model rational-GCD tick — which is
    // part of every cone — stays put (40 µs would divide every other
    // duration and *raise* the tick, invalidating the filter cone too).
    client
        .edit_model(&drive_model(6_000))
        .map_err(io)?
        .map_err(wire)?;
    let batch2 = client
        .query_batch("drive", &queries, &Default::default())
        .map_err(io)?
        .map_err(wire)?;
    expect(
        batch2.get("batched").and_then(JsonValue::as_bool) == Some(true),
        "post-edit batch collapsed",
    )?;

    let stats = client.stats().map_err(io)?.map_err(wire)?;
    let hits: i128 = stats
        .get("dbs")
        .and_then(JsonValue::as_array)
        .map(|dbs| {
            dbs.iter()
                .filter_map(|d| d.get("stats")?.get("hits")?.as_i128())
                .sum()
        })
        .unwrap_or(0);
    expect(
        hits >= 1,
        "the untouched filter cone should hit after edit_model",
    )?;
    println!("{}", stats.print());

    client.shutdown().map_err(io)?.map_err(wire)?;
    Ok(())
}
