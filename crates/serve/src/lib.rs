//! `tempo_serve` — analysis-as-a-service for the tempo workspace.
//!
//! A long-lived daemon wrapping one shared
//! [`AnalysisDb`](tempo_arch::incremental::AnalysisDb) per analysis
//! configuration, speaking a line-oriented JSON protocol (one request or
//! response object per line) over stdin/stdout or TCP.  Holding the database
//! in a process that outlives individual requests is what makes the
//! content-addressed cache pay off: the second client asking about an
//! unchanged subsystem gets its worst-case response times from warm input
//! cones instead of a fresh zone-graph exploration.
//!
//! The crate is dependency-free beyond the workspace: [`json`] is a small
//! parse/print pair for a canonical JSON subset (property-tested for
//! round-trips), and the transport is `std::net` + pipes.
//!
//! Layers, bottom to top:
//!
//! * [`json`] — [`JsonValue`](json::JsonValue), [`json::parse`], canonical
//!   printing (sorted keys, no whitespace).
//! * [`wire`] — conversions between engine-layer types
//!   ([`ArchitectureModel`](tempo_arch::model::ArchitectureModel),
//!   [`Query`](tempo_arch::engine::Query),
//!   [`EngineReport`](tempo_arch::engine::EngineReport), …) and JSON, plus
//!   the typed [`WireError`](wire::WireError) every
//!   [`EngineError`](tempo_arch::engine::EngineError) maps onto.
//! * [`protocol`] — request/response/progress framing.
//! * [`server`] — admission control (bounded worker pool + queue cap, typed
//!   `overloaded` rejection), cancellation, cache-aware batching
//!   (`query_batch` collapses to one `WcrtAll` when the batch covers the
//!   requirement set), progress streaming, and `stats` with database,
//!   admission and metrics-registry snapshots.
//! * [`client`] — a blocking reference client, used by the differential
//!   tests and the benchmark harness.
//!
//! ## A daemon over a pipe pair
//!
//! ```
//! use std::io::BufReader;
//! use tempo_serve::{Client, Server, ServerConfig};
//!
//! // Transport: two unidirectional pipes, as stdio would be.
//! let (c2s_r, c2s_w) = std::io::pipe().unwrap();
//! let (s2c_r, s2c_w) = std::io::pipe().unwrap();
//!
//! let server = Server::new(ServerConfig::default());
//! let handle = server.handle();
//! let conn = std::thread::spawn(move || {
//!     handle.serve_connection(BufReader::new(c2s_r), s2c_w);
//! });
//!
//! let mut client = Client::over(BufReader::new(s2c_r), c2s_w);
//! let mut model = tempo_arch::model::ArchitectureModel::new("doc");
//! let cpu = model.add_processor("CPU", 100,
//!     tempo_arch::model::SchedulingPolicy::FixedPriorityPreemptive);
//! let s = model.add_scenario(tempo_arch::model::Scenario {
//!     name: "s".into(),
//!     stimulus: tempo_arch::model::EventModel::Periodic {
//!         period: tempo_arch::time::TimeValue::millis(10),
//!     },
//!     priority: 1,
//!     steps: vec![tempo_arch::model::Step::Execute {
//!         operation: "op".into(), instructions: 1_000, on: cpu,
//!     }],
//! });
//! model.add_requirement(tempo_arch::model::Requirement {
//!     name: "r".into(),
//!     scenario: s,
//!     from: tempo_arch::model::MeasurePoint::Stimulus,
//!     to: tempo_arch::model::MeasurePoint::AfterStep(0),
//!     deadline: tempo_arch::time::TimeValue::millis(10),
//! });
//!
//! client.load_model(&model).unwrap().unwrap();
//! let report = client
//!     .query("doc", &tempo_arch::engine::Query::wcrt("r"), &Default::default())
//!     .unwrap()
//!     .unwrap();
//! assert_eq!(report.get("engine").and_then(|e| e.as_str()), Some("incremental"));
//! client.shutdown().unwrap().unwrap();
//! drop(client);
//! conn.join().unwrap();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod wire;

pub use client::{Client, QueryOpts};
pub use json::{parse as parse_json, JsonValue};
pub use protocol::{Request, RequestOpts};
pub use server::{Server, ServerConfig, ServerHandle};
pub use wire::WireError;
