//! A dependency-free JSON value, parser and canonical printer.
//!
//! The vendored `serde` is a no-op derive stub (the build environment has no
//! crates.io access), so the wire protocol carries its own JSON layer.  Two
//! deliberate choices make it fit the analysis wire format:
//!
//! * **Integers and floats are distinct variants.**  [`JsonValue::Int`] holds
//!   an `i128`, so [`TimeValue`](tempo_arch::time::TimeValue) numerators and
//!   denominators and 64-bit cone hashes round-trip exactly; a number lexes as
//!   [`JsonValue::Float`] only when it carries a fraction or an exponent.
//!   The printer preserves the distinction (`1` vs `1.0`), which is what makes
//!   `parse ∘ print` the identity — the round-trip property test relies on it.
//! * **Objects are `BTreeMap`s.**  Printing is canonical (keys sorted,
//!   no whitespace), so two structurally equal values print byte-identically —
//!   the serve differential compares answers by their printed form.
//!
//! Non-finite floats are not representable in JSON; the printer renders them
//! as `null` (they never occur in protocol values — wall-clock and elapsed
//! micros are finite by construction).

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts (arrays + objects).
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, within `i128` range.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; `BTreeMap` so printing is canonical (keys sorted).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> JsonValue {
        JsonValue::Object(BTreeMap::new())
    }

    /// Builds an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, JsonValue); N]) -> JsonValue {
        JsonValue::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Inserts a key into an object value; panics on non-objects (builder use
    /// only).
    pub fn set(&mut self, key: &str, value: JsonValue) {
        match self {
            JsonValue::Object(m) => {
                m.insert(key.to_string(), value);
            }
            _ => panic!("JsonValue::set on a non-object"),
        }
    }

    /// Looks a key up in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            JsonValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if this is a non-negative integer in
    /// range.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i128().and_then(|i| u64::try_from(i).ok())
    }

    /// The integer payload as `usize`, if in range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i128().and_then(|i| usize::try_from(i).ok())
    }

    /// The numeric payload as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// `true` iff this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Canonical rendering: keys sorted (by `BTreeMap` construction), no
    /// whitespace, shortest round-tripping float form with a `.0` marker for
    /// integral floats.
    pub fn print(&self) -> String {
        let mut out = String::new();
        self.print_into(&mut out);
        out
    }

    fn print_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Int(i) => out.push_str(&i.to_string()),
            JsonValue::Float(f) => {
                if !f.is_finite() {
                    out.push_str("null");
                } else if *f == f.trunc() {
                    // Keep the float/int distinction through a round-trip.
                    out.push_str(&format!("{f:.1}"));
                } else {
                    // Rust's shortest-repr Display round-trips exactly.
                    out.push_str(&format!("{f}"));
                }
            }
            JsonValue::Str(s) => print_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.print_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    print_string(k, out);
                    out.push(':');
                    v.print_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.print())
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> JsonValue {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> JsonValue {
        JsonValue::Str(s)
    }
}

impl From<i128> for JsonValue {
    fn from(i: i128) -> JsonValue {
        JsonValue::Int(i)
    }
}

impl From<u64> for JsonValue {
    fn from(i: u64) -> JsonValue {
        JsonValue::Int(i as i128)
    }
}

impl From<usize> for JsonValue {
    fn from(i: usize) -> JsonValue {
        JsonValue::Int(i as i128)
    }
}

impl From<f64> for JsonValue {
    fn from(f: f64) -> JsonValue {
        JsonValue::Float(f)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> JsonValue {
        JsonValue::Bool(b)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> JsonValue {
        JsonValue::Array(v)
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(o: Option<T>) -> JsonValue {
        match o {
            Some(v) => v.into(),
            None => JsonValue::Null,
        }
    }
}

fn print_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut entries = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and we only stopped at ASCII
                // boundaries, so this slice is valid UTF-8 too.
                s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(
                    |_| JsonError {
                        pos: start,
                        msg: "invalid utf-8 in string".to_string(),
                    },
                )?);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            s.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Reads exactly four hex digits and advances past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("expected digit"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after `.`"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Int(42));
        assert_eq!(parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(parse("1.5").unwrap(), JsonValue::Float(1.5));
        assert_eq!(parse("1e3").unwrap(), JsonValue::Float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn int_float_distinction_survives_round_trip() {
        let i = parse("5").unwrap();
        let f = parse("5.0").unwrap();
        assert_ne!(i, f);
        assert_eq!(parse(&i.print()).unwrap(), i);
        assert_eq!(parse(&f.print()).unwrap(), f);
        // i128 extremes round-trip exactly (the TimeValue wire requirement).
        for v in [i128::MAX, i128::MIN, u64::MAX as i128] {
            let j = JsonValue::Int(v);
            assert_eq!(parse(&j.print()).unwrap(), j);
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = JsonValue::Str("a\"b\\c\nd\te\u{1}–\u{1F600}".into());
        assert_eq!(parse(&s.print()).unwrap(), s);
        // \u escapes with a surrogate pair.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::Str("\u{1F600}".into())
        );
        assert!(parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn canonical_printing_sorts_keys() {
        let v = parse("{\"b\":1,\"a\":[true,null,{}]}").unwrap();
        assert_eq!(v.print(), "{\"a\":[true,null,{}],\"b\":1}");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "nul", "01x", "1.", "--1", "\"\\q\"", "[1] 2",
            "{1:2}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        let deep = "[".repeat(400) + &"]".repeat(400);
        assert!(parse(&deep).is_err());
    }
}
