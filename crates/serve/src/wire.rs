//! The wire vocabulary: conversions between the engine-layer types and
//! [`JsonValue`], plus the typed protocol error.
//!
//! The design constraint is the PR 6 robustness contract — *never wrong, only
//! slower, looser, or explicitly declined* — surviving the wire: every
//! [`EngineError`] maps onto a [`WireError`] with a stable `kind` tag, and
//! estimates travel as exact rationals ([`TimeValue`] numerator/denominator
//! pairs), never as lossy floats.  [`answer_key`] renders the *answer* part of
//! an [`EngineReport`] (engine, query, estimates, verdict, truncation) to the
//! canonical JSON string, excluding run-dependent fields (wall time, stored
//! states) — the serve differential compares wire answers against direct
//! [`AnalysisDb::run`](tempo_arch::incremental::AnalysisDb::run) answers by
//! this key, byte for byte.

use crate::json::JsonValue;
use std::fmt;
use tempo_arch::engine::{EngineError, EngineReport, Estimate, Query, RequirementEstimate};
use tempo_arch::incremental::DbStats;
use tempo_arch::model::{
    ArchitectureModel, Bus, BusArbitration, BusId, EventModel, MeasurePoint, Processor,
    ProcessorId, Requirement, Scenario, SchedulingPolicy, ScenarioId, Step,
};
use tempo_arch::time::TimeValue;
use tempo_check::SearchProgress;

/// A typed protocol error: a stable `kind` tag plus human-readable detail.
///
/// Kinds mapped from [`EngineError`]: `model`, `unknown_requirement`,
/// `unsupported`, `overload`, `cancelled`, `timed_out`, `check`, `panicked`,
/// `internal`.  Protocol-level kinds: `parse`, `bad_request`,
/// `unknown_model`, `overloaded` (admission queue full), `shutting_down`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Stable machine-readable tag.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

impl WireError {
    /// Builds an error with the given kind and detail.
    pub fn new(kind: &str, detail: impl Into<String>) -> WireError {
        WireError {
            kind: kind.to_string(),
            detail: detail.into(),
        }
    }

    /// A malformed request body.
    pub fn bad_request(detail: impl Into<String>) -> WireError {
        WireError::new("bad_request", detail)
    }

    /// Maps an [`EngineError`] onto the wire, preserving its type.
    pub fn from_engine(e: &EngineError) -> WireError {
        let (kind, detail) = match e {
            EngineError::Model(d) => ("model", d.clone()),
            EngineError::UnknownRequirement(n) => ("unknown_requirement", n.clone()),
            EngineError::Unsupported { engine, detail } => {
                ("unsupported", format!("{engine}: {detail}"))
            }
            EngineError::Overload(d) => ("overload", d.clone()),
            EngineError::Cancelled => ("cancelled", "run cancelled".to_string()),
            EngineError::TimedOut => ("timed_out", "shared deadline expired".to_string()),
            EngineError::Check(c) => ("check", c.to_string()),
            EngineError::Panicked { engine, payload } => {
                ("panicked", format!("{engine}: {payload}"))
            }
            EngineError::Internal(d) => ("internal", d.clone()),
        };
        WireError {
            kind: kind.to_string(),
            detail,
        }
    }

    /// Renders as `{"kind":...,"detail":...}`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("kind", self.kind.as_str().into()),
            ("detail", self.detail.as_str().into()),
        ])
    }

    /// Parses the `{"kind":...,"detail":...}` shape.
    pub fn from_json(v: &JsonValue) -> WireError {
        WireError {
            kind: v
                .get("kind")
                .and_then(JsonValue::as_str)
                .unwrap_or("internal")
                .to_string(),
            detail: v
                .get("detail")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// TimeValue
// ---------------------------------------------------------------------------

/// `TimeValue` → `{"num":N,"den":D}` (exact rational microseconds).
pub fn time_to_json(t: TimeValue) -> JsonValue {
    JsonValue::obj([
        ("num", t.numerator().into()),
        ("den", t.denominator().into()),
    ])
}

/// Parses the `{"num":N,"den":D}` shape.
pub fn time_from_json(v: &JsonValue) -> Result<TimeValue, WireError> {
    let num = v
        .get("num")
        .and_then(JsonValue::as_i128)
        .ok_or_else(|| WireError::bad_request("time value needs integer `num`"))?;
    let den = v
        .get("den")
        .and_then(JsonValue::as_i128)
        .ok_or_else(|| WireError::bad_request("time value needs integer `den`"))?;
    if den <= 0 {
        return Err(WireError::bad_request("time denominator must be positive"));
    }
    Ok(TimeValue::ratio_us(num, den))
}

// ---------------------------------------------------------------------------
// ArchitectureModel
// ---------------------------------------------------------------------------

fn policy_to_str(p: SchedulingPolicy) -> &'static str {
    match p {
        SchedulingPolicy::NonPreemptiveNd => "non_preemptive_nd",
        SchedulingPolicy::FixedPriorityNonPreemptive => "fixed_priority_non_preemptive",
        SchedulingPolicy::FixedPriorityPreemptive => "fixed_priority_preemptive",
    }
}

fn policy_from_str(s: &str) -> Result<SchedulingPolicy, WireError> {
    match s {
        "non_preemptive_nd" => Ok(SchedulingPolicy::NonPreemptiveNd),
        "fixed_priority_non_preemptive" => Ok(SchedulingPolicy::FixedPriorityNonPreemptive),
        "fixed_priority_preemptive" => Ok(SchedulingPolicy::FixedPriorityPreemptive),
        other => Err(WireError::bad_request(format!(
            "unknown scheduling policy `{other}`"
        ))),
    }
}

fn arbitration_to_json(a: &BusArbitration) -> JsonValue {
    match a {
        BusArbitration::FcfsNd => "fcfs_nd".into(),
        BusArbitration::FixedPriority => "fixed_priority".into(),
        BusArbitration::Tdma { slot } => {
            JsonValue::obj([("tdma", JsonValue::obj([("slot", time_to_json(*slot))]))])
        }
    }
}

fn arbitration_from_json(v: &JsonValue) -> Result<BusArbitration, WireError> {
    if let Some(s) = v.as_str() {
        return match s {
            "fcfs_nd" => Ok(BusArbitration::FcfsNd),
            "fixed_priority" => Ok(BusArbitration::FixedPriority),
            other => Err(WireError::bad_request(format!(
                "unknown bus arbitration `{other}`"
            ))),
        };
    }
    if let Some(t) = v.get("tdma") {
        let slot = t
            .get("slot")
            .ok_or_else(|| WireError::bad_request("tdma arbitration needs `slot`"))?;
        return Ok(BusArbitration::Tdma {
            slot: time_from_json(slot)?,
        });
    }
    Err(WireError::bad_request("unrecognized bus arbitration"))
}

fn event_model_to_json(e: &EventModel) -> JsonValue {
    match e {
        EventModel::PeriodicOffset { period, offset } => JsonValue::obj([
            ("kind", "periodic_offset".into()),
            ("period", time_to_json(*period)),
            ("offset", time_to_json(*offset)),
        ]),
        EventModel::Periodic { period } => JsonValue::obj([
            ("kind", "periodic".into()),
            ("period", time_to_json(*period)),
        ]),
        EventModel::Sporadic { min_interarrival } => JsonValue::obj([
            ("kind", "sporadic".into()),
            ("min_interarrival", time_to_json(*min_interarrival)),
        ]),
        EventModel::PeriodicJitter { period, jitter } => JsonValue::obj([
            ("kind", "periodic_jitter".into()),
            ("period", time_to_json(*period)),
            ("jitter", time_to_json(*jitter)),
        ]),
        EventModel::Burst {
            period,
            jitter,
            min_separation,
        } => JsonValue::obj([
            ("kind", "burst".into()),
            ("period", time_to_json(*period)),
            ("jitter", time_to_json(*jitter)),
            ("min_separation", time_to_json(*min_separation)),
        ]),
    }
}

fn field_time(v: &JsonValue, key: &str) -> Result<TimeValue, WireError> {
    time_from_json(
        v.get(key)
            .ok_or_else(|| WireError::bad_request(format!("missing time field `{key}`")))?,
    )
}

fn field_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, WireError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| WireError::bad_request(format!("missing string field `{key}`")))
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, WireError> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| WireError::bad_request(format!("missing integer field `{key}`")))
}

fn event_model_from_json(v: &JsonValue) -> Result<EventModel, WireError> {
    match field_str(v, "kind")? {
        "periodic_offset" => Ok(EventModel::PeriodicOffset {
            period: field_time(v, "period")?,
            offset: field_time(v, "offset")?,
        }),
        "periodic" => Ok(EventModel::Periodic {
            period: field_time(v, "period")?,
        }),
        "sporadic" => Ok(EventModel::Sporadic {
            min_interarrival: field_time(v, "min_interarrival")?,
        }),
        "periodic_jitter" => Ok(EventModel::PeriodicJitter {
            period: field_time(v, "period")?,
            jitter: field_time(v, "jitter")?,
        }),
        "burst" => Ok(EventModel::Burst {
            period: field_time(v, "period")?,
            jitter: field_time(v, "jitter")?,
            min_separation: field_time(v, "min_separation")?,
        }),
        other => Err(WireError::bad_request(format!(
            "unknown event model `{other}`"
        ))),
    }
}

fn step_to_json(s: &Step) -> JsonValue {
    match s {
        Step::Execute {
            operation,
            instructions,
            on,
        } => JsonValue::obj([(
            "execute",
            JsonValue::obj([
                ("operation", operation.as_str().into()),
                ("instructions", (*instructions).into()),
                ("on", on.0.into()),
            ]),
        )]),
        Step::Transfer {
            message,
            bytes,
            over,
        } => JsonValue::obj([(
            "transfer",
            JsonValue::obj([
                ("message", message.as_str().into()),
                ("bytes", (*bytes).into()),
                ("over", over.0.into()),
            ]),
        )]),
    }
}

fn step_from_json(v: &JsonValue) -> Result<Step, WireError> {
    if let Some(e) = v.get("execute") {
        return Ok(Step::Execute {
            operation: field_str(e, "operation")?.to_string(),
            instructions: field_u64(e, "instructions")?,
            on: ProcessorId(
                e.get("on")
                    .and_then(JsonValue::as_usize)
                    .ok_or_else(|| WireError::bad_request("execute step needs `on`"))?,
            ),
        });
    }
    if let Some(t) = v.get("transfer") {
        return Ok(Step::Transfer {
            message: field_str(t, "message")?.to_string(),
            bytes: field_u64(t, "bytes")?,
            over: BusId(
                t.get("over")
                    .and_then(JsonValue::as_usize)
                    .ok_or_else(|| WireError::bad_request("transfer step needs `over`"))?,
            ),
        });
    }
    Err(WireError::bad_request(
        "step must be `execute` or `transfer`",
    ))
}

fn measure_point_to_json(m: MeasurePoint) -> JsonValue {
    match m {
        MeasurePoint::Stimulus => "stimulus".into(),
        MeasurePoint::AfterStep(i) => JsonValue::obj([("after_step", i.into())]),
    }
}

fn measure_point_from_json(v: &JsonValue) -> Result<MeasurePoint, WireError> {
    if v.as_str() == Some("stimulus") {
        return Ok(MeasurePoint::Stimulus);
    }
    if let Some(i) = v.get("after_step").and_then(JsonValue::as_usize) {
        return Ok(MeasurePoint::AfterStep(i));
    }
    Err(WireError::bad_request(
        "measure point must be \"stimulus\" or {\"after_step\":N}",
    ))
}

/// Renders a full architecture model.
pub fn model_to_json(m: &ArchitectureModel) -> JsonValue {
    JsonValue::obj([
        ("name", m.name.as_str().into()),
        (
            "processors",
            m.processors
                .iter()
                .map(|p| {
                    JsonValue::obj([
                        ("name", p.name.as_str().into()),
                        ("mips", p.mips.into()),
                        ("policy", policy_to_str(p.policy).into()),
                    ])
                })
                .collect::<Vec<_>>()
                .into(),
        ),
        (
            "buses",
            m.buses
                .iter()
                .map(|b| {
                    JsonValue::obj([
                        ("name", b.name.as_str().into()),
                        ("bits_per_second", b.bits_per_second.into()),
                        ("arbitration", arbitration_to_json(&b.arbitration)),
                    ])
                })
                .collect::<Vec<_>>()
                .into(),
        ),
        (
            "scenarios",
            m.scenarios
                .iter()
                .map(|s| {
                    JsonValue::obj([
                        ("name", s.name.as_str().into()),
                        ("stimulus", event_model_to_json(&s.stimulus)),
                        ("priority", (s.priority as u64).into()),
                        (
                            "steps",
                            s.steps.iter().map(step_to_json).collect::<Vec<_>>().into(),
                        ),
                    ])
                })
                .collect::<Vec<_>>()
                .into(),
        ),
        (
            "requirements",
            m.requirements
                .iter()
                .map(|r| {
                    JsonValue::obj([
                        ("name", r.name.as_str().into()),
                        ("scenario", r.scenario.0.into()),
                        ("from", measure_point_to_json(r.from)),
                        ("to", measure_point_to_json(r.to)),
                        ("deadline", time_to_json(r.deadline)),
                    ])
                })
                .collect::<Vec<_>>()
                .into(),
        ),
    ])
}

fn field_array<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], WireError> {
    v.get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| WireError::bad_request(format!("missing array field `{key}`")))
}

/// Parses a full architecture model (structural checks only; semantic
/// validation stays with [`ArchitectureModel::validate`]).
pub fn model_from_json(v: &JsonValue) -> Result<ArchitectureModel, WireError> {
    let mut m = ArchitectureModel::new(field_str(v, "name")?);
    for p in field_array(v, "processors")? {
        m.processors.push(Processor {
            name: field_str(p, "name")?.to_string(),
            mips: field_u64(p, "mips")?,
            policy: policy_from_str(field_str(p, "policy")?)?,
        });
    }
    for b in field_array(v, "buses")? {
        m.buses.push(Bus {
            name: field_str(b, "name")?.to_string(),
            bits_per_second: field_u64(b, "bits_per_second")?,
            arbitration: arbitration_from_json(
                b.get("arbitration")
                    .ok_or_else(|| WireError::bad_request("bus needs `arbitration`"))?,
            )?,
        });
    }
    for s in field_array(v, "scenarios")? {
        let steps = field_array(s, "steps")?
            .iter()
            .map(step_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        m.scenarios.push(Scenario {
            name: field_str(s, "name")?.to_string(),
            stimulus: event_model_from_json(
                s.get("stimulus")
                    .ok_or_else(|| WireError::bad_request("scenario needs `stimulus`"))?,
            )?,
            priority: u32::try_from(field_u64(s, "priority")?)
                .map_err(|_| WireError::bad_request("priority out of range"))?,
            steps,
        });
    }
    for r in field_array(v, "requirements")? {
        m.requirements.push(Requirement {
            name: field_str(r, "name")?.to_string(),
            scenario: ScenarioId(
                r.get("scenario")
                    .and_then(JsonValue::as_usize)
                    .ok_or_else(|| WireError::bad_request("requirement needs `scenario`"))?,
            ),
            from: measure_point_from_json(
                r.get("from")
                    .ok_or_else(|| WireError::bad_request("requirement needs `from`"))?,
            )?,
            to: measure_point_from_json(
                r.get("to")
                    .ok_or_else(|| WireError::bad_request("requirement needs `to`"))?,
            )?,
            deadline: field_time(r, "deadline")?,
        });
    }
    Ok(m)
}

// ---------------------------------------------------------------------------
// Query / Estimate / EngineReport
// ---------------------------------------------------------------------------

/// Renders a typed query.
pub fn query_to_json(q: &Query) -> JsonValue {
    match q {
        Query::Wcrt { requirement } => JsonValue::obj([
            ("kind", "wcrt".into()),
            ("requirement", requirement.as_str().into()),
        ]),
        Query::WcrtAll => JsonValue::obj([("kind", "wcrt_all".into())]),
        Query::DeadlineCheck { requirement } => JsonValue::obj([
            ("kind", "deadline_check".into()),
            ("requirement", requirement.as_str().into()),
        ]),
        Query::QueueBounds => JsonValue::obj([("kind", "queue_bounds".into())]),
        Query::Supremum { requirement } => JsonValue::obj([
            ("kind", "supremum".into()),
            ("requirement", requirement.as_str().into()),
        ]),
    }
}

/// Parses a typed query.
pub fn query_from_json(v: &JsonValue) -> Result<Query, WireError> {
    match field_str(v, "kind")? {
        "wcrt" => Ok(Query::Wcrt {
            requirement: field_str(v, "requirement")?.to_string(),
        }),
        "wcrt_all" => Ok(Query::WcrtAll),
        "deadline_check" => Ok(Query::DeadlineCheck {
            requirement: field_str(v, "requirement")?.to_string(),
        }),
        "queue_bounds" => Ok(Query::QueueBounds),
        "supremum" => Ok(Query::Supremum {
            requirement: field_str(v, "requirement")?.to_string(),
        }),
        other => Err(WireError::bad_request(format!("unknown query `{other}`"))),
    }
}

fn estimate_to_json(e: &Estimate) -> JsonValue {
    match e {
        Estimate::Exact(t) => {
            JsonValue::obj([("kind", "exact".into()), ("value", time_to_json(*t))])
        }
        Estimate::LowerBound(t) => JsonValue::obj([
            ("kind", "lower_bound".into()),
            ("value", time_to_json(*t)),
        ]),
        Estimate::UpperBound(t) => JsonValue::obj([
            ("kind", "upper_bound".into()),
            ("value", time_to_json(*t)),
        ]),
        Estimate::Interval { lo, hi } => JsonValue::obj([
            ("kind", "interval".into()),
            ("lo", time_to_json(*lo)),
            ("hi", time_to_json(*hi)),
        ]),
    }
}

/// Parses an estimate (used by the client-side helpers and tests).
pub fn estimate_from_json(v: &JsonValue) -> Result<Estimate, WireError> {
    match field_str(v, "kind")? {
        "exact" => Ok(Estimate::Exact(field_time(v, "value")?)),
        "lower_bound" => Ok(Estimate::LowerBound(field_time(v, "value")?)),
        "upper_bound" => Ok(Estimate::UpperBound(field_time(v, "value")?)),
        "interval" => Ok(Estimate::Interval {
            lo: field_time(v, "lo")?,
            hi: field_time(v, "hi")?,
        }),
        other => Err(WireError::bad_request(format!(
            "unknown estimate `{other}`"
        ))),
    }
}

fn requirement_estimate_to_json(r: &RequirementEstimate) -> JsonValue {
    JsonValue::obj([
        ("requirement", r.requirement.as_str().into()),
        ("estimate", estimate_to_json(&r.estimate)),
        ("deadline", time_to_json(r.deadline)),
        ("meets_deadline", r.meets_deadline.into()),
    ])
}

fn option_bool(v: Option<bool>) -> JsonValue {
    match v {
        Some(b) => JsonValue::Bool(b),
        None => JsonValue::Null,
    }
}

/// The answer part of a report — everything a client should treat as *the
/// result* — as a JSON object.  Excludes wall time and stored-state counts,
/// which vary run to run (and cold vs warm) without changing the answer.
pub fn answer_to_json(r: &EngineReport) -> JsonValue {
    JsonValue::obj([
        ("engine", r.engine.as_str().into()),
        ("query", query_to_json(&r.query)),
        (
            "estimates",
            r.estimates
                .iter()
                .map(requirement_estimate_to_json)
                .collect::<Vec<_>>()
                .into(),
        ),
        ("verdict", option_bool(r.verdict)),
        ("truncated", r.truncated.into()),
    ])
}

/// The canonical printed form of [`answer_to_json`] — the byte-identity key
/// of the serve differential.
pub fn answer_key(r: &EngineReport) -> String {
    answer_to_json(r).print()
}

/// The full report: the answer plus run metadata (wall time in microseconds,
/// stored symbolic states).
pub fn report_to_json(r: &EngineReport) -> JsonValue {
    let mut v = answer_to_json(r);
    v.set("wall_time_us", (r.wall_time.as_micros() as i128).into());
    v.set(
        "states_stored",
        match r.states_stored {
            Some(s) => s.into(),
            None => JsonValue::Null,
        },
    );
    v
}

/// Projects a wire report (as returned by the server) back onto its answer
/// key: drops the run-metadata fields and re-prints canonically.
pub fn wire_answer_key(report: &JsonValue) -> String {
    let mut v = report.clone();
    if let JsonValue::Object(m) = &mut v {
        m.remove("wall_time_us");
        m.remove("states_stored");
    }
    v.print()
}

/// Renders database statistics.
pub fn db_stats_to_json(s: &DbStats) -> JsonValue {
    JsonValue::obj([
        ("hits", s.hits.into()),
        ("misses", s.misses.into()),
        ("invalidations", s.invalidations.into()),
        ("generations", s.generations.into()),
        ("generation_nanos", s.generation_nanos.into()),
        ("exploration_nanos", s.exploration_nanos.into()),
    ])
}

/// Renders a progress sample (elapsed in integer microseconds).
pub fn progress_to_json(p: &SearchProgress) -> JsonValue {
    JsonValue::obj([
        ("states_explored", p.states_explored.into()),
        ("states_stored", p.states_stored.into()),
        ("waiting", p.waiting.into()),
        ("workers_active", p.workers_active.into()),
        ("elapsed_us", (p.elapsed.as_micros() as i128).into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_model() -> ArchitectureModel {
        let mut m = ArchitectureModel::new("wire-sample");
        let cpu = m.add_processor("CPU", 100, SchedulingPolicy::FixedPriorityPreemptive);
        let bus = m.add_bus(
            "BUS",
            8_000,
            BusArbitration::Tdma {
                slot: TimeValue::millis(5),
            },
        );
        let s = m.add_scenario(Scenario {
            name: "s".into(),
            stimulus: EventModel::Burst {
                period: TimeValue::millis(10),
                jitter: TimeValue::millis(25),
                min_separation: TimeValue::ratio_us(1_500, 7),
            },
            priority: 3,
            steps: vec![
                Step::Execute {
                    operation: "op".into(),
                    instructions: 1_000,
                    on: cpu,
                },
                Step::Transfer {
                    message: "msg".into(),
                    bytes: 12,
                    over: bus,
                },
            ],
        });
        m.add_requirement(Requirement {
            name: "r".into(),
            scenario: s,
            from: MeasurePoint::Stimulus,
            to: MeasurePoint::AfterStep(1),
            deadline: TimeValue::millis(40),
        });
        m
    }

    #[test]
    fn model_round_trips_through_json_text() {
        let m = sample_model();
        let text = model_to_json(&m).print();
        let back = model_from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn query_and_estimate_round_trip() {
        for q in [
            Query::wcrt("a"),
            Query::WcrtAll,
            Query::DeadlineCheck {
                requirement: "b".into(),
            },
            Query::QueueBounds,
            Query::Supremum {
                requirement: "c".into(),
            },
        ] {
            let back = query_from_json(&json::parse(&query_to_json(&q).print()).unwrap()).unwrap();
            assert_eq!(q, back);
        }
        for e in [
            Estimate::Exact(TimeValue::ratio_us(22, 7)),
            Estimate::LowerBound(TimeValue::ZERO),
            Estimate::UpperBound(TimeValue::millis(3)),
            Estimate::Interval {
                lo: TimeValue::millis(1),
                hi: TimeValue::millis(2),
            },
        ] {
            let back =
                estimate_from_json(&json::parse(&estimate_to_json(&e).print()).unwrap()).unwrap();
            assert_eq!(e, back);
        }
    }

    #[test]
    fn engine_errors_keep_their_kind_on_the_wire() {
        let cases = [
            (EngineError::Model("bad".into()), "model"),
            (
                EngineError::UnknownRequirement("r".into()),
                "unknown_requirement",
            ),
            (EngineError::Overload("CPU".into()), "overload"),
            (EngineError::Cancelled, "cancelled"),
            (EngineError::TimedOut, "timed_out"),
            (
                EngineError::Panicked {
                    engine: "ta".into(),
                    payload: "boom".into(),
                },
                "panicked",
            ),
            (EngineError::Internal("x".into()), "internal"),
        ];
        for (e, kind) in cases {
            let w = WireError::from_engine(&e);
            assert_eq!(w.kind, kind);
            let back = WireError::from_json(&json::parse(&w.to_json().print()).unwrap());
            assert_eq!(w, back);
        }
    }
}
