//! The analysis daemon: admission control, the worker pool and connection
//! handling.
//!
//! Architecture (one process):
//!
//! ```text
//! client ──TCP/stdio/pipe──► connection reader thread
//!            │ load_model / edit_model / cancel / stats / shutdown: inline
//!            └ query / query_batch ──► bounded admission queue ──► workers
//!                                        │ (queue full → typed `overloaded`)
//!                                        ▼
//!                              AnalysisDb::run  (one shared db per config)
//! ```
//!
//! Invariants:
//!
//! * **Admission.**  At most `workers` queries run concurrently and at most
//!   `queue_cap` wait; a request arriving beyond that is answered immediately
//!   with a typed `overloaded` error instead of queueing unboundedly.
//!   Cancelling a queued request frees its slot without running it;
//!   cancelling an in-flight request trips the cooperative cancellation flag
//!   threaded into the explorers, which abort at the next state pop.
//! * **Isolation.**  Each job runs behind an unwind barrier: a panic inside
//!   an engine becomes a typed `panicked` response and the worker survives
//!   (the PR 6 contract — never wrong, only slower, looser, or explicitly
//!   declined — holds over the wire).
//! * **One `AnalysisDb` per config.**  Models loaded with the same cap-factor
//!   overrides share one content-addressed database, so identical input
//!   cones hit across models and across connections; `edit_model` re-keys
//!   the cone index and untouched cones stay warm.

use crate::json::{self, JsonValue};
use crate::protocol::{self, Request, RequestOpts};
use crate::wire::{self, WireError};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use tempo_arch::engine::{Budget, EngineReport, Query, RunContext};
use tempo_arch::incremental::AnalysisDb;
use tempo_arch::model::ArchitectureModel;
use tempo_arch::AnalysisConfig;
use tempo_check::{panic_message, FaultPlan};
use tempo_obs::MetricsRegistry;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Maximum queries waiting for a worker; a request beyond this is
    /// answered with a typed `overloaded` error.
    pub queue_cap: usize,
    /// Default per-request wall-clock budget when the request names none.
    pub default_wall_budget: Option<Duration>,
    /// Hard cap on any per-request wall-clock budget (requested or default).
    pub max_wall_budget: Option<Duration>,
    /// Default per-request symbolic-state budget.
    pub default_max_states: Option<usize>,
    /// Server-wide deadline, measured from server start: every run's
    /// `RunContext::deadline` is pinned to it, so a drained daemon winds down
    /// instead of accepting unbounded work.
    pub server_deadline: Option<Duration>,
    /// Install a process-global [`MetricsRegistry`] at startup (the `stats`
    /// response embeds its snapshot either way; installation is what routes
    /// span/counter traffic into it).
    pub install_metrics: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_cap: 16,
            default_wall_budget: None,
            max_wall_budget: None,
            default_max_states: None,
            server_deadline: None,
            install_metrics: true,
        }
    }
}

/// A line sink shared between the connection reader (inline responses), the
/// workers (query responses) and the progress callbacks.
#[derive(Clone)]
pub(crate) struct SharedWriter {
    inner: Arc<Mutex<Box<dyn Write + Send>>>,
}

impl SharedWriter {
    fn new(w: impl Write + Send + 'static) -> SharedWriter {
        SharedWriter {
            inner: Arc::new(Mutex::new(Box::new(w))),
        }
    }

    /// Writes one line + flush; errors are ignored (a disconnected client
    /// cannot be answered, and the reader side will see EOF and wind down).
    fn write_line(&self, line: &str) {
        // One write per frame: splitting the newline into its own write
        // triggers the Nagle/delayed-ACK stall (~40 ms per round trip) on
        // TCP transports.
        let mut frame = String::with_capacity(line.len() + 1);
        frame.push_str(line);
        frame.push('\n');
        let mut w = self.inner.lock().expect("writer lock");
        let _ = w.write_all(frame.as_bytes());
        let _ = w.flush();
    }
}

/// One admitted unit of work.
struct Job {
    id: u64,
    model: String,
    queries: Vec<Query>,
    batch: bool,
    opts: RequestOpts,
    cancel: Arc<AtomicBool>,
    out: SharedWriter,
    /// The owning connection's cancel registry, for deregistration.
    registry: Arc<Mutex<HashMap<u64, Arc<AtomicBool>>>>,
}

/// The bounded admission queue and its counters.
struct Admission {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    active: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    cancelled_before_start: AtomicU64,
}

/// A loaded model and the shared database serving it.
#[derive(Clone)]
struct ModelEntry {
    model: Arc<ArchitectureModel>,
    db: Arc<AnalysisDb>,
    config_label: String,
}

pub(crate) struct ServerState {
    cfg: ServerConfig,
    started: Instant,
    models: Mutex<HashMap<String, ModelEntry>>,
    /// One shared `AnalysisDb` per (initial_cap_factor, max_cap_factor).
    dbs: Mutex<HashMap<(i64, i64), Arc<AnalysisDb>>>,
    registry: Arc<MetricsRegistry>,
    admission: Admission,
    shutdown: AtomicBool,
    /// Local address of the TCP listener, used to wake its accept loop on
    /// shutdown.
    listen_addr: Mutex<Option<SocketAddr>>,
}

/// The analysis daemon.  Construct with [`Server::new`] (spawns the worker
/// pool), serve clients with [`Server::listen`] /
/// [`ServerHandle::serve_connection`], and reclaim the workers with
/// [`Server::join`] after shutdown.
pub struct Server {
    state: Arc<ServerState>,
    workers: Vec<JoinHandle<()>>,
}

/// A cheaply cloneable handle for driving connections from other threads.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl Server {
    /// Starts the worker pool and (optionally) installs the metrics registry.
    pub fn new(cfg: ServerConfig) -> Server {
        let registry = Arc::new(MetricsRegistry::new());
        if cfg.install_metrics {
            tempo_obs::install(registry.clone());
        }
        let worker_count = cfg.workers.max(1);
        let state = Arc::new(ServerState {
            cfg,
            started: Instant::now(),
            models: Mutex::new(HashMap::new()),
            dbs: Mutex::new(HashMap::new()),
            registry,
            admission: Admission {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                active: AtomicUsize::new(0),
                admitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                cancelled_before_start: AtomicU64::new(0),
            },
            shutdown: AtomicBool::new(false),
            listen_addr: Mutex::new(None),
        });
        let workers = (0..worker_count)
            .map(|_| {
                let state = state.clone();
                thread::spawn(move || worker_loop(&state))
            })
            .collect();
        Server { state, workers }
    }

    /// A handle for serving connections from spawned threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: self.state.clone(),
        }
    }

    /// Serves one connection on the calling thread (see
    /// [`ServerHandle::serve_connection`]).
    pub fn serve_connection(&self, reader: impl BufRead, writer: impl Write + Send + 'static) {
        self.handle().serve_connection(reader, writer);
    }

    /// Accept loop: serves each TCP connection on its own thread until a
    /// client requests shutdown.
    pub fn listen(&self, listener: TcpListener) -> std::io::Result<()> {
        if let Ok(addr) = listener.local_addr() {
            *self.state.listen_addr.lock().expect("addr lock") = Some(addr);
        }
        for conn in listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Response frames are single small writes; without this the
            // request/response round trip eats the delayed-ACK penalty.
            let _ = stream.set_nodelay(true);
            let handle = self.handle();
            thread::spawn(move || {
                let reader = match stream.try_clone() {
                    Ok(r) => BufReader::new(r),
                    Err(_) => return,
                };
                handle.serve_connection(reader, stream);
            });
        }
        Ok(())
    }

    /// Binds a loopback listener, runs the accept loop on a new thread, and
    /// returns the bound address — the one-liner tests and benches use.
    pub fn spawn_local(self) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let handle = thread::spawn(move || {
            let _ = self.listen(listener);
            self.join();
        });
        Ok((addr, handle))
    }

    /// `true` once a client has requested shutdown.
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the worker pool to drain and exit.  Call after shutdown has
    /// been requested (by a client, or via [`Server::begin_shutdown`]).
    pub fn join(mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Initiates shutdown without a client request.
    pub fn begin_shutdown(&self) {
        self.state.begin_shutdown();
    }
}

impl ServerHandle {
    /// Serves one connection on the calling thread: reads one request per
    /// line, answers management operations inline, and submits queries to the
    /// admission queue.  Returns when the client disconnects or a shutdown is
    /// requested.
    pub fn serve_connection(&self, mut reader: impl BufRead, writer: impl Write + Send + 'static) {
        let out = SharedWriter::new(writer);
        let cancels: Arc<Mutex<HashMap<u64, Arc<AtomicBool>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            if line.trim().is_empty() {
                continue;
            }
            let req = match protocol::parse_request(line.trim_end()) {
                Ok(r) => r,
                Err((id, e)) => {
                    out.write_line(&protocol::response_err(id, &e));
                    continue;
                }
            };
            match req {
                Request::LoadModel {
                    id,
                    model,
                    initial_cap_factor,
                    max_cap_factor,
                } => {
                    let line = match self.state.load_model(model, initial_cap_factor, max_cap_factor)
                    {
                        Ok(result) => protocol::response_ok(id, result),
                        Err(e) => protocol::response_err(Some(id), &e),
                    };
                    out.write_line(&line);
                }
                Request::EditModel { id, model } => {
                    let line = match self.state.edit_model(model) {
                        Ok(result) => protocol::response_ok(id, result),
                        Err(e) => protocol::response_err(Some(id), &e),
                    };
                    out.write_line(&line);
                }
                Request::Cancel { id, target } => {
                    let found = cancels.lock().expect("cancel lock").get(&target).cloned();
                    let state = match found {
                        Some(flag) => {
                            flag.store(true, Ordering::SeqCst);
                            "signalled"
                        }
                        None => "unknown",
                    };
                    out.write_line(&protocol::response_ok(
                        id,
                        JsonValue::obj([
                            ("cancelled", target.into()),
                            ("state", state.into()),
                        ]),
                    ));
                }
                Request::Stats { id } => {
                    out.write_line(&protocol::response_ok(id, self.state.stats_json()));
                }
                Request::Shutdown { id } => {
                    out.write_line(&protocol::response_ok(
                        id,
                        JsonValue::obj([("shutdown", true.into())]),
                    ));
                    self.state.begin_shutdown();
                    break;
                }
                Request::Query { id, model, query, opts } => {
                    self.submit(&out, &cancels, id, model, vec![query], false, opts);
                }
                Request::QueryBatch {
                    id,
                    model,
                    queries,
                    opts,
                } => {
                    self.submit(&out, &cancels, id, model, queries, true, opts);
                }
            }
        }
        // The reader is gone: any still-queued request of this connection
        // would write into a dead socket; cancelling them frees their slots.
        for flag in cancels.lock().expect("cancel lock").values() {
            flag.store(true, Ordering::SeqCst);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn submit(
        &self,
        out: &SharedWriter,
        cancels: &Arc<Mutex<HashMap<u64, Arc<AtomicBool>>>>,
        id: u64,
        model: String,
        queries: Vec<Query>,
        batch: bool,
        opts: RequestOpts,
    ) {
        if self.state.shutdown.load(Ordering::SeqCst) {
            out.write_line(&protocol::response_err(
                Some(id),
                &WireError::new("shutting_down", "server is shutting down"),
            ));
            return;
        }
        let cancel = Arc::new(AtomicBool::new(false));
        cancels
            .lock()
            .expect("cancel lock")
            .insert(id, cancel.clone());
        let job = Job {
            id,
            model,
            queries,
            batch,
            opts,
            cancel,
            out: out.clone(),
            registry: cancels.clone(),
        };
        if let Err(depth) = self.state.admit(job) {
            cancels.lock().expect("cancel lock").remove(&id);
            self.state
                .admission
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            out.write_line(&protocol::response_err(
                Some(id),
                &WireError::new(
                    "overloaded",
                    format!("admission queue full ({depth} waiting)"),
                ),
            ));
        }
    }
}

impl ServerState {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Flush queued jobs with a typed response and wake the workers so
        // they can observe the flag and exit.
        let drained: Vec<Job> = {
            let mut q = self.admission.queue.lock().expect("queue lock");
            q.drain(..).collect()
        };
        for job in drained {
            job.out.write_line(&protocol::response_err(
                Some(job.id),
                &WireError::new("shutting_down", "server is shutting down"),
            ));
            job.registry.lock().expect("cancel lock").remove(&job.id);
        }
        self.admission.available.notify_all();
        // Wake the accept loop with a no-op connection so `listen` returns.
        let addr = *self.listen_addr.lock().expect("addr lock");
        if let Some(addr) = addr {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        }
    }

    fn admit(&self, job: Job) -> Result<(), usize> {
        let mut q = self.admission.queue.lock().expect("queue lock");
        if q.len() >= self.cfg.queue_cap {
            return Err(q.len());
        }
        q.push_back(job);
        self.admission.admitted.fetch_add(1, Ordering::Relaxed);
        self.admission.available.notify_one();
        Ok(())
    }

    fn config_for(&self, icf: Option<i64>, mcf: Option<i64>) -> (AnalysisConfig, (i64, i64), String) {
        let mut cfg = AnalysisConfig::default();
        if let Some(f) = icf {
            cfg.initial_cap_factor = f;
        }
        if let Some(f) = mcf {
            cfg.max_cap_factor = f;
        }
        let key = (cfg.initial_cap_factor, cfg.max_cap_factor);
        let label = format!("icf={},mcf={}", key.0, key.1);
        (cfg, key, label)
    }

    fn load_model(
        &self,
        model: ArchitectureModel,
        icf: Option<i64>,
        mcf: Option<i64>,
    ) -> Result<JsonValue, WireError> {
        model
            .validate()
            .map_err(|e| WireError::new("model", e.to_string()))?;
        let (cfg, key, label) = self.config_for(icf, mcf);
        let db = {
            let mut dbs = self.dbs.lock().expect("dbs lock");
            dbs.entry(key)
                .or_insert_with(|| Arc::new(AnalysisDb::new(cfg)))
                .clone()
        };
        let name = model.name.clone();
        let requirements = model.requirements.len();
        self.models.lock().expect("models lock").insert(
            name.clone(),
            ModelEntry {
                model: Arc::new(model),
                db,
                config_label: label.clone(),
            },
        );
        Ok(JsonValue::obj([
            ("loaded", name.as_str().into()),
            ("requirements", requirements.into()),
            ("config", label.as_str().into()),
        ]))
    }

    fn edit_model(&self, model: ArchitectureModel) -> Result<JsonValue, WireError> {
        model
            .validate()
            .map_err(|e| WireError::new("model", e.to_string()))?;
        let mut models = self.models.lock().expect("models lock");
        let entry = models.get_mut(&model.name).ok_or_else(|| {
            WireError::new(
                "unknown_model",
                format!("no loaded model named `{}`", model.name),
            )
        })?;
        // Same entry, same shared db: the content-addressed cone index
        // re-keys itself on the next query; untouched cones stay warm.
        let name = model.name.clone();
        entry.model = Arc::new(model);
        Ok(JsonValue::obj([("reloaded", name.as_str().into())]))
    }

    fn stats_json(&self) -> JsonValue {
        let models: Vec<JsonValue> = {
            let models = self.models.lock().expect("models lock");
            let mut rows: Vec<_> = models
                .iter()
                .map(|(name, e)| {
                    JsonValue::obj([
                        ("name", name.as_str().into()),
                        ("requirements", e.model.requirements.len().into()),
                        ("config", e.config_label.as_str().into()),
                    ])
                })
                .collect();
            rows.sort_by_key(|v| v.print());
            rows
        };
        let dbs: Vec<JsonValue> = {
            let dbs = self.dbs.lock().expect("dbs lock");
            let mut rows: Vec<_> = dbs
                .iter()
                .map(|((icf, mcf), db)| {
                    JsonValue::obj([
                        ("config", format!("icf={icf},mcf={mcf}").into()),
                        ("stats", wire::db_stats_to_json(&db.stats())),
                    ])
                })
                .collect();
            rows.sort_by_key(|v| v.print());
            rows
        };
        let queued = self.admission.queue.lock().expect("queue lock").len();
        let admission = JsonValue::obj([
            ("workers", self.cfg.workers.max(1).into()),
            ("queue_cap", self.cfg.queue_cap.into()),
            ("active", self.admission.active.load(Ordering::Relaxed).into()),
            ("queued", queued.into()),
            (
                "admitted",
                self.admission.admitted.load(Ordering::Relaxed).into(),
            ),
            (
                "rejected",
                self.admission.rejected.load(Ordering::Relaxed).into(),
            ),
            (
                "completed",
                self.admission.completed.load(Ordering::Relaxed).into(),
            ),
            (
                "cancelled_before_start",
                self.admission
                    .cancelled_before_start
                    .load(Ordering::Relaxed)
                    .into(),
            ),
        ]);
        // The registry snapshot renders its own JSON; re-parse it so the
        // stats response is one well-formed object (dogfooding the parser).
        let metrics = json::parse(&self.registry.snapshot().to_json())
            .unwrap_or(JsonValue::Null);
        JsonValue::obj([
            (
                "uptime_us",
                (self.started.elapsed().as_micros() as i128).into(),
            ),
            ("models", models.into()),
            ("dbs", dbs.into()),
            ("admission", admission),
            ("metrics", metrics),
        ])
    }

    /// Builds the run context of one job from its options and the server
    /// budget policy.
    fn run_context(&self, job: &Job) -> RunContext {
        let mut wall = job
            .opts
            .budget_ms
            .map(Duration::from_millis)
            .or(self.cfg.default_wall_budget);
        if let Some(cap) = self.cfg.max_wall_budget {
            wall = Some(wall.map_or(cap, |w| w.min(cap)));
        }
        let progress = job.opts.progress.then(|| {
            let out = job.out.clone();
            let id = job.id;
            let f: Arc<tempo_check::ProgressFn> = Arc::new(move |p| {
                out.write_line(&protocol::progress_frame(id, p));
            });
            f
        });
        RunContext {
            budget: Budget {
                wall_clock: wall,
                max_states: job.opts.max_states.or(self.cfg.default_max_states),
            },
            cancel: Some(job.cancel.clone()),
            progress,
            deadline: self.cfg.server_deadline.map(|d| self.started + d),
            faults: job
                .opts
                .fault_seed
                .map(|s| Arc::new(FaultPlan::from_seed(s))),
        }
    }

    /// Executes one admitted job and returns the response line.
    fn execute(&self, job: &Job) -> String {
        let entry = self
            .models
            .lock()
            .expect("models lock")
            .get(&job.model)
            .cloned();
        let Some(entry) = entry else {
            return protocol::response_err(
                Some(job.id),
                &WireError::new(
                    "unknown_model",
                    format!("no loaded model named `{}`", job.model),
                ),
            );
        };
        let ctx = self.run_context(job);
        if !job.batch {
            return match entry.db.run(&entry.model, &job.queries[0], &ctx) {
                Ok(report) => protocol::response_ok(job.id, wire::report_to_json(&report)),
                Err(e) => protocol::response_err(Some(job.id), &WireError::from_engine(&e)),
            };
        }
        let (batched, results) = self.run_batch(&entry, &job.queries, &ctx);
        protocol::response_ok(
            job.id,
            JsonValue::obj([("batched", batched.into()), ("results", results.into())]),
        )
    }

    /// Runs a batch, collapsing to one `WcrtAll` when the queries are all
    /// `wcrt` and together cover the model's requirement set exactly.
    fn run_batch(
        &self,
        entry: &ModelEntry,
        queries: &[Query],
        ctx: &RunContext,
    ) -> (bool, Vec<JsonValue>) {
        if let Some(results) = self.try_collapsed(entry, queries, ctx) {
            return (true, results);
        }
        let results = queries
            .iter()
            .map(|q| match entry.db.run(&entry.model, q, ctx) {
                Ok(report) => JsonValue::obj([
                    ("ok", true.into()),
                    ("report", wire::report_to_json(&report)),
                ]),
                Err(e) => JsonValue::obj([
                    ("ok", false.into()),
                    ("error", WireError::from_engine(&e).to_json()),
                ]),
            })
            .collect();
        (false, results)
    }

    /// The cache-aware collapse: one `WcrtAll` run answers the whole batch.
    /// Returns `None` when the batch shape does not allow it or the collapsed
    /// run fails (the caller then falls back to per-query execution, which
    /// reports per-query errors).
    fn try_collapsed(
        &self,
        entry: &ModelEntry,
        queries: &[Query],
        ctx: &RunContext,
    ) -> Option<Vec<JsonValue>> {
        if queries.len() != entry.model.requirements.len() {
            return None;
        }
        let mut names: Vec<&str> = queries
            .iter()
            .map(|q| match q {
                Query::Wcrt { requirement } => Some(requirement.as_str()),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?;
        names.sort_unstable();
        names.dedup();
        let mut required: Vec<&str> = entry
            .model
            .requirements
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        required.sort_unstable();
        if names != required {
            return None;
        }
        let report = entry.db.run(&entry.model, &Query::WcrtAll, ctx).ok()?;
        Some(
            queries
                .iter()
                .map(|q| {
                    let Query::Wcrt { requirement } = q else {
                        unreachable!("collapse precondition: all queries are wcrt");
                    };
                    match report.estimate_for(requirement) {
                        Some(row) => {
                            let split = EngineReport {
                                engine: report.engine.clone(),
                                query: q.clone(),
                                estimates: vec![row.clone()],
                                verdict: None,
                                wall_time: report.wall_time,
                                states_stored: report.states_stored,
                                truncated: report.truncated,
                            };
                            JsonValue::obj([
                                ("ok", true.into()),
                                ("report", wire::report_to_json(&split)),
                            ])
                        }
                        None => JsonValue::obj([
                            ("ok", false.into()),
                            (
                                "error",
                                WireError::new(
                                    "internal",
                                    format!("missing `{requirement}` in batched WcrtAll"),
                                )
                                .to_json(),
                            ),
                        ]),
                    }
                })
                .collect(),
        )
    }
}

fn worker_loop(state: &Arc<ServerState>) {
    loop {
        let job = {
            let mut q = state.admission.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = state
                    .admission
                    .available
                    .wait(q)
                    .expect("queue lock poisoned");
            }
        };
        state.admission.active.fetch_add(1, Ordering::SeqCst);
        let line = if job.cancel.load(Ordering::SeqCst) {
            // Cancelled while queued: the slot is freed without running.
            state
                .admission
                .cancelled_before_start
                .fetch_add(1, Ordering::Relaxed);
            protocol::response_err(
                Some(job.id),
                &WireError::new("cancelled", "cancelled before execution"),
            )
        } else {
            // Unwind barrier: a panic inside an engine becomes a typed
            // response and the worker survives.
            let out = match catch_unwind(AssertUnwindSafe(|| state.execute(&job))) {
                Ok(line) => line,
                Err(payload) => protocol::response_err(
                    Some(job.id),
                    &WireError::new("panicked", panic_message(payload)),
                ),
            };
            state.admission.completed.fetch_add(1, Ordering::Relaxed);
            out
        };
        // Release the slot *before* the response frame goes out: a client
        // that has seen a request's response may rely on its slot being free
        // (the cancellation contract), so the books must already balance.
        job.registry.lock().expect("cancel lock").remove(&job.id);
        state.admission.active.fetch_sub(1, Ordering::SeqCst);
        job.out.write_line(&line);
    }
}
