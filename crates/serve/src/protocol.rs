//! The line-oriented request/response protocol.
//!
//! One JSON object per line in each direction.  Requests carry an `op` tag
//! and a client-chosen numeric `id` (unique per connection); the server
//! answers each request with exactly one *response* frame
//! (`{"frame":"response","id":N,"ok":true,"result":…}` or
//! `{"frame":"response","id":N,"ok":false,"error":{"kind":…,"detail":…}}`)
//! and may interleave any number of *progress* frames
//! (`{"frame":"progress","id":N,…}`) tagged with the same id, so concurrent
//! requests multiplex safely over one connection.
//!
//! Operations: `load_model`, `edit_model`, `query`, `query_batch`, `cancel`,
//! `stats`, `shutdown`.  Responses to `query`/`query_batch` may arrive out of
//! submission order (they run on the admission-controlled worker pool); the
//! other operations are answered inline by the connection reader.

use crate::json::{self, JsonValue};
use crate::wire::{self, WireError};
use tempo_arch::engine::Query;
use tempo_arch::model::ArchitectureModel;
use tempo_check::SearchProgress;

/// Per-request execution options of `query` / `query_batch`.
#[derive(Clone, Debug, Default)]
pub struct RequestOpts {
    /// Wall-clock budget in milliseconds (merged with, and capped by, the
    /// server's configured budgets).
    pub budget_ms: Option<u64>,
    /// Symbolic-state budget.
    pub max_states: Option<usize>,
    /// Stream `progress` frames for this request.
    pub progress: bool,
    /// Seed of a deterministic [`tempo_check::FaultPlan`] threaded into the
    /// run (chaos testing over the wire).
    pub fault_seed: Option<u64>,
}

/// A parsed request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Load (or replace) a model; optional per-model cap-factor overrides
    /// select which shared `AnalysisDb` serves it.
    LoadModel {
        /// Request id.
        id: u64,
        /// The model.
        model: ArchitectureModel,
        /// Override of `AnalysisConfig::initial_cap_factor`.
        initial_cap_factor: Option<i64>,
        /// Override of `AnalysisConfig::max_cap_factor`.
        max_cap_factor: Option<i64>,
    },
    /// Replace an already-loaded model under the same name.  The analysis
    /// database is content-addressed, so queries whose input cone the edit
    /// did not touch keep hitting the warm cache.
    EditModel {
        /// Request id.
        id: u64,
        /// The replacement model (same `name` as a loaded one).
        model: ArchitectureModel,
    },
    /// One typed query against a loaded model.
    Query {
        /// Request id.
        id: u64,
        /// Loaded model name.
        model: String,
        /// The query.
        query: Query,
        /// Execution options.
        opts: RequestOpts,
    },
    /// A batch of queries against one loaded model, answered in one response.
    /// When every query is a `wcrt` and together they cover the model's
    /// requirement set exactly, the server collapses the batch into a single
    /// `WcrtAll` run.
    QueryBatch {
        /// Request id.
        id: u64,
        /// Loaded model name.
        model: String,
        /// The queries.
        queries: Vec<Query>,
        /// Execution options (shared by the batch).
        opts: RequestOpts,
    },
    /// Cancel an in-flight or queued `query`/`query_batch` by its id.
    Cancel {
        /// Request id of the cancel itself.
        id: u64,
        /// Id of the request to cancel.
        target: u64,
    },
    /// Server statistics: per-config `DbStats`, admission counters and the
    /// metrics-registry snapshot.
    Stats {
        /// Request id.
        id: u64,
    },
    /// Graceful shutdown.
    Shutdown {
        /// Request id.
        id: u64,
    },
}

impl Request {
    /// The request id.
    pub fn id(&self) -> u64 {
        match self {
            Request::LoadModel { id, .. }
            | Request::EditModel { id, .. }
            | Request::Query { id, .. }
            | Request::QueryBatch { id, .. }
            | Request::Cancel { id, .. }
            | Request::Stats { id }
            | Request::Shutdown { id } => *id,
        }
    }
}

fn parse_opts(v: &JsonValue) -> Result<RequestOpts, WireError> {
    let Some(o) = v.get("opts") else {
        return Ok(RequestOpts::default());
    };
    if o.is_null() {
        return Ok(RequestOpts::default());
    }
    Ok(RequestOpts {
        budget_ms: o.get("budget_ms").and_then(JsonValue::as_u64),
        max_states: o.get("max_states").and_then(JsonValue::as_usize),
        progress: o
            .get("progress")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false),
        fault_seed: o.get("fault_seed").and_then(JsonValue::as_u64),
    })
}

/// Parses one request line.  On failure the error carries the request id when
/// one could still be extracted, so the caller can address its error response.
pub fn parse_request(line: &str) -> Result<Request, (Option<u64>, WireError)> {
    let v = json::parse(line)
        .map_err(|e| (None, WireError::new("parse", e.to_string())))?;
    let id = v.get("id").and_then(JsonValue::as_u64);
    let fail = |e: WireError| (id, e);
    let id = id.ok_or_else(|| {
        (
            None,
            WireError::bad_request("request needs an integer `id`"),
        )
    })?;
    let op = v
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| fail(WireError::bad_request("request needs a string `op`")))?;
    match op {
        "load_model" => {
            let model = wire::model_from_json(
                v.get("model")
                    .ok_or_else(|| fail(WireError::bad_request("load_model needs `model`")))?,
            )
            .map_err(fail)?;
            let cfg = v.get("config");
            let as_factor = |key: &str| {
                cfg.and_then(|c| c.get(key))
                    .and_then(JsonValue::as_i128)
                    .and_then(|i| i64::try_from(i).ok())
            };
            Ok(Request::LoadModel {
                id,
                model,
                initial_cap_factor: as_factor("initial_cap_factor"),
                max_cap_factor: as_factor("max_cap_factor"),
            })
        }
        "edit_model" => {
            let model = wire::model_from_json(
                v.get("model")
                    .ok_or_else(|| fail(WireError::bad_request("edit_model needs `model`")))?,
            )
            .map_err(fail)?;
            Ok(Request::EditModel { id, model })
        }
        "query" => Ok(Request::Query {
            id,
            model: v
                .get("model")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| fail(WireError::bad_request("query needs a `model` name")))?
                .to_string(),
            query: wire::query_from_json(
                v.get("query")
                    .ok_or_else(|| fail(WireError::bad_request("query needs `query`")))?,
            )
            .map_err(fail)?,
            opts: parse_opts(&v).map_err(fail)?,
        }),
        "query_batch" => {
            let queries = v
                .get("queries")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| fail(WireError::bad_request("query_batch needs `queries`")))?
                .iter()
                .map(wire::query_from_json)
                .collect::<Result<Vec<_>, _>>()
                .map_err(fail)?;
            if queries.is_empty() {
                return Err(fail(WireError::bad_request("empty query batch")));
            }
            Ok(Request::QueryBatch {
                id,
                model: v
                    .get("model")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| {
                        fail(WireError::bad_request("query_batch needs a `model` name"))
                    })?
                    .to_string(),
                queries,
                opts: parse_opts(&v).map_err(fail)?,
            })
        }
        "cancel" => Ok(Request::Cancel {
            id,
            target: v
                .get("target")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| fail(WireError::bad_request("cancel needs a `target` id")))?,
        }),
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(fail(WireError::bad_request(format!(
            "unknown op `{other}`"
        )))),
    }
}

/// A successful response line (no trailing newline).
pub fn response_ok(id: u64, result: JsonValue) -> String {
    JsonValue::obj([
        ("frame", "response".into()),
        ("id", id.into()),
        ("ok", true.into()),
        ("result", result),
    ])
    .print()
}

/// An error response line.  `id` is `null` when the request was too malformed
/// to carry one.
pub fn response_err(id: Option<u64>, err: &WireError) -> String {
    JsonValue::obj([
        ("frame", "response".into()),
        (
            "id",
            match id {
                Some(i) => i.into(),
                None => JsonValue::Null,
            },
        ),
        ("ok", false.into()),
        ("error", err.to_json()),
    ])
    .print()
}

/// A progress frame line, tagged with the request id it belongs to.
pub fn progress_frame(id: u64, p: &SearchProgress) -> String {
    let mut v = wire::progress_to_json(p);
    v.set("frame", "progress".into());
    v.set("id", id.into());
    v.print()
}

/// Serializes a `query` request (the client side of [`parse_request`]).
pub fn request_query(id: u64, model: &str, query: &Query, opts: &RequestOpts) -> String {
    let mut v = JsonValue::obj([
        ("op", "query".into()),
        ("id", id.into()),
        ("model", model.into()),
        ("query", wire::query_to_json(query)),
    ]);
    v.set("opts", opts_to_json(opts));
    v.print()
}

/// Serializes a `query_batch` request.
pub fn request_query_batch(
    id: u64,
    model: &str,
    queries: &[Query],
    opts: &RequestOpts,
) -> String {
    let mut v = JsonValue::obj([
        ("op", "query_batch".into()),
        ("id", id.into()),
        ("model", model.into()),
        (
            "queries",
            queries
                .iter()
                .map(wire::query_to_json)
                .collect::<Vec<_>>()
                .into(),
        ),
    ]);
    v.set("opts", opts_to_json(opts));
    v.print()
}

fn opts_to_json(opts: &RequestOpts) -> JsonValue {
    let mut o = JsonValue::object();
    if let Some(b) = opts.budget_ms {
        o.set("budget_ms", b.into());
    }
    if let Some(s) = opts.max_states {
        o.set("max_states", s.into());
    }
    if opts.progress {
        o.set("progress", true.into());
    }
    if let Some(s) = opts.fault_seed {
        o.set("fault_seed", s.into());
    }
    o
}

/// Serializes a `load_model` request.
pub fn request_load_model(
    id: u64,
    model: &ArchitectureModel,
    initial_cap_factor: Option<i64>,
    max_cap_factor: Option<i64>,
) -> String {
    let mut v = JsonValue::obj([
        ("op", "load_model".into()),
        ("id", id.into()),
        ("model", wire::model_to_json(model)),
    ]);
    let mut cfg = JsonValue::object();
    if let Some(f) = initial_cap_factor {
        cfg.set("initial_cap_factor", (f as i128).into());
    }
    if let Some(f) = max_cap_factor {
        cfg.set("max_cap_factor", (f as i128).into());
    }
    if cfg != JsonValue::object() {
        v.set("config", cfg);
    }
    v.print()
}

/// Serializes an `edit_model` request.
pub fn request_edit_model(id: u64, model: &ArchitectureModel) -> String {
    JsonValue::obj([
        ("op", "edit_model".into()),
        ("id", id.into()),
        ("model", wire::model_to_json(model)),
    ])
    .print()
}

/// Serializes a `cancel` request.
pub fn request_cancel(id: u64, target: u64) -> String {
    JsonValue::obj([
        ("op", "cancel".into()),
        ("id", id.into()),
        ("target", target.into()),
    ])
    .print()
}

/// Serializes a `stats` request.
pub fn request_stats(id: u64) -> String {
    JsonValue::obj([("op", "stats".into()), ("id", id.into())]).print()
}

/// Serializes a `shutdown` request.
pub fn request_shutdown(id: u64) -> String {
    JsonValue::obj([("op", "shutdown".into()), ("id", id.into())]).print()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_request_round_trips() {
        let opts = RequestOpts {
            budget_ms: Some(250),
            max_states: Some(10_000),
            progress: true,
            fault_seed: Some(42),
        };
        let line = request_query(7, "m", &Query::wcrt("r"), &opts);
        match parse_request(&line).unwrap() {
            Request::Query {
                id,
                model,
                query,
                opts,
            } => {
                assert_eq!(id, 7);
                assert_eq!(model, "m");
                assert_eq!(query, Query::wcrt("r"));
                assert_eq!(opts.budget_ms, Some(250));
                assert_eq!(opts.max_states, Some(10_000));
                assert!(opts.progress);
                assert_eq!(opts.fault_seed, Some(42));
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_carry_ids_when_possible() {
        let (id, err) = parse_request("not json").unwrap_err();
        assert_eq!(id, None);
        assert_eq!(err.kind, "parse");
        let (id, err) = parse_request("{\"op\":\"nope\",\"id\":9}").unwrap_err();
        assert_eq!(id, Some(9));
        assert_eq!(err.kind, "bad_request");
        let (id, err) = parse_request("{\"op\":\"query\",\"id\":3}").unwrap_err();
        assert_eq!(id, Some(3));
        assert_eq!(err.kind, "bad_request");
    }
}
