//! A blocking, line-oriented client for the daemon — the test harness and
//! the reference implementation of the wire protocol's client side.
//!
//! The client is deliberately simple: every `submit_*` method writes one
//! request line and returns its id; [`Client::wait`] reads response lines
//! until the wanted id answers, buffering out-of-order responses (a daemon
//! with several workers completes requests in any order) and collecting
//! interleaved `progress` frames per request id.

use crate::json::JsonValue;
use crate::protocol::{self, RequestOpts};
use crate::wire::WireError;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use tempo_arch::engine::Query;
use tempo_arch::model::ArchitectureModel;

/// Per-request options; re-exported from the protocol layer.
pub type QueryOpts = RequestOpts;

/// A blocking protocol client over any line-oriented transport.
pub struct Client<R: BufRead, W: Write> {
    reader: R,
    writer: W,
    next_id: u64,
    /// Responses that arrived while waiting for a different id.
    pending: HashMap<u64, Result<JsonValue, WireError>>,
    /// Progress frames collected per request id.
    progress: HashMap<u64, Vec<JsonValue>>,
}

impl Client<BufReader<TcpStream>, TcpStream> {
    /// Connects to a daemon over TCP.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client<BufReader<TcpStream>, TcpStream>> {
        let stream = TcpStream::connect(addr)?;
        // Frames are single small writes on both sides; Nagle would only add
        // delayed-ACK latency to the request/response round trip.
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client::over(reader, stream))
    }
}

impl<R: BufRead, W: Write> Client<R, W> {
    /// Wraps an existing transport (a pipe pair, an in-memory stream, …).
    pub fn over(reader: R, writer: W) -> Client<R, W> {
        Client {
            reader,
            writer,
            next_id: 0,
            pending: HashMap::new(),
            progress: HashMap::new(),
        }
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn send(&mut self, line: &str) -> io::Result<()> {
        // One write per frame (see `SharedWriter::write_line`): a separate
        // newline write would re-introduce the Nagle/delayed-ACK stall.
        let mut frame = String::with_capacity(line.len() + 1);
        frame.push_str(line);
        frame.push('\n');
        self.writer.write_all(frame.as_bytes())?;
        self.writer.flush()
    }

    /// Submits a `load_model` request; returns its id.
    pub fn submit_load_model(
        &mut self,
        model: &ArchitectureModel,
        initial_cap_factor: Option<i64>,
        max_cap_factor: Option<i64>,
    ) -> io::Result<u64> {
        let id = self.fresh_id();
        let line = protocol::request_load_model(id, model, initial_cap_factor, max_cap_factor);
        self.send(&line)?;
        Ok(id)
    }

    /// Submits an `edit_model` request; returns its id.
    pub fn submit_edit_model(&mut self, model: &ArchitectureModel) -> io::Result<u64> {
        let id = self.fresh_id();
        let line = protocol::request_edit_model(id, model);
        self.send(&line)?;
        Ok(id)
    }

    /// Submits a `query` request; returns its id.
    pub fn submit_query(
        &mut self,
        model: &str,
        query: &Query,
        opts: &QueryOpts,
    ) -> io::Result<u64> {
        let id = self.fresh_id();
        let line = protocol::request_query(id, model, query, opts);
        self.send(&line)?;
        Ok(id)
    }

    /// Submits a `query_batch` request; returns its id.
    pub fn submit_query_batch(
        &mut self,
        model: &str,
        queries: &[Query],
        opts: &QueryOpts,
    ) -> io::Result<u64> {
        let id = self.fresh_id();
        let line = protocol::request_query_batch(id, model, queries, opts);
        self.send(&line)?;
        Ok(id)
    }

    /// Submits a `cancel` for request `target`; returns the cancel's own id.
    pub fn submit_cancel(&mut self, target: u64) -> io::Result<u64> {
        let id = self.fresh_id();
        let line = protocol::request_cancel(id, target);
        self.send(&line)?;
        Ok(id)
    }

    /// Submits a `stats` request; returns its id.
    pub fn submit_stats(&mut self) -> io::Result<u64> {
        let id = self.fresh_id();
        let line = protocol::request_stats(id);
        self.send(&line)?;
        Ok(id)
    }

    /// Submits a `shutdown` request; returns its id.
    pub fn submit_shutdown(&mut self) -> io::Result<u64> {
        let id = self.fresh_id();
        let line = protocol::request_shutdown(id);
        self.send(&line)?;
        Ok(id)
    }

    /// Blocks until the response for `id` arrives.  Responses for other ids
    /// seen on the way are buffered for their own `wait`; `progress` frames
    /// accumulate per id and can be drained with [`Client::take_progress`].
    pub fn wait(&mut self, id: u64) -> io::Result<Result<JsonValue, WireError>> {
        if let Some(res) = self.pending.remove(&id) {
            return Ok(res);
        }
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("connection closed while waiting for response {id}"),
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            let v = crate::json::parse(line.trim_end()).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}"))
            })?;
            match v.get("frame").and_then(JsonValue::as_str) {
                Some("progress") => {
                    if let Some(pid) = v.get("id").and_then(JsonValue::as_u64) {
                        self.progress.entry(pid).or_default().push(v);
                    }
                }
                Some("response") => {
                    let rid = v.get("id").and_then(JsonValue::as_u64);
                    let ok = v.get("ok").and_then(JsonValue::as_bool).unwrap_or(false);
                    let res = if ok {
                        Ok(v.get("result").cloned().unwrap_or(JsonValue::Null))
                    } else {
                        Err(v
                            .get("error")
                            .map(WireError::from_json)
                            .unwrap_or_else(|| {
                                WireError::new("internal", "malformed error frame")
                            }))
                    };
                    match rid {
                        Some(rid) if rid == id => return Ok(res),
                        Some(rid) => {
                            self.pending.insert(rid, res);
                        }
                        // A parse error the server could not attribute to a
                        // request id: surface it to whoever is waiting.
                        None => return Ok(res),
                    }
                }
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown frame: {}", line.trim_end()),
                    ));
                }
            }
        }
    }

    /// Drains the progress frames collected for request `id`.
    pub fn take_progress(&mut self, id: u64) -> Vec<JsonValue> {
        self.progress.remove(&id).unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Blocking conveniences: submit + wait in one call.
    // ------------------------------------------------------------------

    /// Loads `model` with the daemon's default analysis configuration.
    pub fn load_model(
        &mut self,
        model: &ArchitectureModel,
    ) -> io::Result<Result<JsonValue, WireError>> {
        let id = self.submit_load_model(model, None, None)?;
        self.wait(id)
    }

    /// Loads `model` with cap-factor overrides (selecting / creating the
    /// shared database for that configuration).
    pub fn load_model_with(
        &mut self,
        model: &ArchitectureModel,
        initial_cap_factor: Option<i64>,
        max_cap_factor: Option<i64>,
    ) -> io::Result<Result<JsonValue, WireError>> {
        let id = self.submit_load_model(model, initial_cap_factor, max_cap_factor)?;
        self.wait(id)
    }

    /// Replaces an already-loaded model in place (cache cones stay warm).
    pub fn edit_model(
        &mut self,
        model: &ArchitectureModel,
    ) -> io::Result<Result<JsonValue, WireError>> {
        let id = self.submit_edit_model(model)?;
        self.wait(id)
    }

    /// Runs one query and waits for its report.
    pub fn query(
        &mut self,
        model: &str,
        query: &Query,
        opts: &QueryOpts,
    ) -> io::Result<Result<JsonValue, WireError>> {
        let id = self.submit_query(model, query, opts)?;
        self.wait(id)
    }

    /// Runs a batch and waits for its (possibly collapsed) results.
    pub fn query_batch(
        &mut self,
        model: &str,
        queries: &[Query],
        opts: &QueryOpts,
    ) -> io::Result<Result<JsonValue, WireError>> {
        let id = self.submit_query_batch(model, queries, opts)?;
        self.wait(id)
    }

    /// Cancels request `target` and waits for the cancel acknowledgement
    /// (the cancelled request still gets its own typed response).
    pub fn cancel(&mut self, target: u64) -> io::Result<Result<JsonValue, WireError>> {
        let id = self.submit_cancel(target)?;
        self.wait(id)
    }

    /// Fetches the daemon's stats snapshot.
    pub fn stats(&mut self) -> io::Result<Result<JsonValue, WireError>> {
        let id = self.submit_stats()?;
        self.wait(id)
    }

    /// Requests shutdown and waits for the acknowledgement.
    pub fn shutdown(&mut self) -> io::Result<Result<JsonValue, WireError>> {
        let id = self.submit_shutdown()?;
        self.wait(id)
    }
}
