//! The [`Engine`] implementation of the discrete-event-simulation baseline.

use crate::engine::{simulate, SimConfig, SimError, SimReport};
use std::time::Instant;
use tempo_arch::engine::{
    poll_entry_fault, BoundKind, Capabilities, Engine, EngineError, EngineReport, Query,
    RequirementEstimate, RunContext,
};
use tempo_arch::model::ArchitectureModel;
use tempo_arch::time::TimeValue;

/// The simulation engine: lower bounds observed by executing the model.
///
/// The run context's wall-clock budget is honored between simulation runs —
/// a budgeted campaign simply performs fewer runs, and the partial maximum is
/// still a sound lower bound.
#[derive(Clone, Debug, Default)]
pub struct SimEngine {
    /// The simulation campaign configuration (horizon, runs, base seed).
    pub cfg: SimConfig,
}

impl SimEngine {
    /// An engine with the given campaign configuration.
    pub fn with_config(cfg: SimConfig) -> SimEngine {
        SimEngine { cfg }
    }
}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::Model(m) => EngineError::Model(m),
        }
    }
}

fn estimate_row(model: &ArchitectureModel, report: &SimReport) -> RequirementEstimate {
    let deadline = model
        .requirement_by_name(&report.requirement)
        .map(|r| r.deadline)
        .unwrap_or(TimeValue::ZERO);
    let estimate = report.estimate();
    // A witnessed response at or past the deadline *refutes* the deadline;
    // observations below it prove nothing about the worst case.
    let meets_deadline = estimate
        .lower()
        .and_then(|lb| (report.observations > 0 && lb >= deadline).then_some(false));
    RequirementEstimate {
        requirement: report.requirement.clone(),
        estimate,
        deadline,
        meets_deadline,
    }
}

impl Engine for SimEngine {
    fn name(&self) -> &'static str {
        "simulation"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            bound: BoundKind::Lower,
            wcrt: true,
            deadline_check: true,
            queue_bounds: false,
        }
    }

    fn run(
        &self,
        model: &ArchitectureModel,
        query: &Query,
        ctx: &RunContext,
    ) -> Result<EngineReport, EngineError> {
        if matches!(query, Query::QueueBounds) {
            return Err(EngineError::Unsupported {
                engine: self.name().into(),
                detail: "queue-boundedness needs the exact state space".into(),
            });
        }
        let started = Instant::now();
        let mut deadline = ctx.effective_deadline(started);
        if poll_entry_fault(ctx)? {
            // Injected budget exhaustion: degrade to the shortest campaign —
            // the first run still executes, so the answer stays a sound
            // (if loose) lower bound.
            deadline = Some(started);
        }

        // Run the campaign one run at a time so the budget and cancellation
        // are honored between runs; seeds match `simulate` with `runs` runs,
        // so an unbudgeted engine run reproduces the plain campaign exactly.
        let mut merged: Option<Vec<SimReport>> = None;
        let mut truncated = false;
        for run in 0..self.cfg.runs.max(1) {
            if ctx.is_cancelled() {
                return Err(EngineError::Cancelled);
            }
            if run > 0 && deadline.is_some_and(|d| Instant::now() >= d) {
                truncated = true;
                break;
            }
            let reports = simulate(
                model,
                &SimConfig {
                    horizon: self.cfg.horizon,
                    runs: 1,
                    seed: self.cfg.seed + run as u64,
                },
            )?;
            match &mut merged {
                None => merged = Some(reports),
                Some(acc) => {
                    for (a, r) in acc.iter_mut().zip(reports) {
                        a.max_response_us = a.max_response_us.max(r.max_response_us);
                        a.observations += r.observations;
                    }
                }
            }
        }
        let merged = merged.expect("at least one run");

        let wanted = query.requirement();
        let estimates: Vec<RequirementEstimate> = merged
            .iter()
            .filter(|r| wanted.is_none_or(|name| r.requirement == name))
            .map(|r| estimate_row(model, r))
            .collect();
        if let Some(name) = wanted {
            if estimates.is_empty() {
                return Err(EngineError::UnknownRequirement(name.to_string()));
            }
        }
        let verdict = match query {
            Query::DeadlineCheck { .. } => estimates.first().and_then(|e| e.meets_deadline),
            _ => None,
        };
        let estimates = match query {
            Query::Supremum { .. } => estimates
                .into_iter()
                .map(|mut e| {
                    e.meets_deadline = None;
                    e
                })
                .collect(),
            _ => estimates,
        };
        Ok(EngineReport {
            engine: self.name().into(),
            query: query.clone(),
            estimates,
            verdict,
            wall_time: started.elapsed(),
            states_stored: None,
            truncated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_arch::engine::Estimate;
    use tempo_arch::model::{
        EventModel, MeasurePoint, Requirement, Scenario, SchedulingPolicy, Step,
    };

    fn model() -> ArchitectureModel {
        let mut m = ArchitectureModel::new("sim-engine");
        let cpu = m.add_processor("CPU", 1, SchedulingPolicy::FixedPriorityPreemptive);
        let s = m.add_scenario(Scenario {
            name: "task".into(),
            stimulus: EventModel::Periodic {
                period: TimeValue::millis(10),
            },
            priority: 0,
            steps: vec![Step::Execute {
                operation: "work".into(),
                instructions: 2_000,
                on: cpu,
            }],
        });
        m.add_requirement(Requirement {
            name: "rt".into(),
            scenario: s,
            from: MeasurePoint::Stimulus,
            to: MeasurePoint::AfterStep(0),
            deadline: TimeValue::millis(10),
        });
        m
    }

    #[test]
    fn engine_matches_plain_campaign_and_reports_lower_bounds() {
        let m = model();
        let cfg = SimConfig {
            horizon: TimeValue::seconds(1),
            runs: 3,
            seed: 7,
        };
        let plain = simulate(&m, &cfg).unwrap();
        let engine = SimEngine::with_config(cfg);
        let report = engine
            .run(&m, &Query::wcrt("rt"), &RunContext::default())
            .unwrap();
        let est = &report.estimates[0];
        assert!(matches!(est.estimate, Estimate::LowerBound(_)));
        // Unbudgeted engine runs reproduce the plain campaign exactly.
        assert_eq!(est.estimate, plain[0].estimate());
        assert_eq!(est.meets_deadline, None);
        assert!(matches!(
            engine.run(&m, &Query::wcrt("nope"), &RunContext::default()),
            Err(EngineError::UnknownRequirement(_))
        ));
    }

    #[test]
    fn budget_shortens_the_campaign_but_keeps_it_sound() {
        let m = model();
        let engine = SimEngine::with_config(SimConfig {
            horizon: TimeValue::seconds(1),
            runs: 50,
            seed: 7,
        });
        let ctx = RunContext::with_wall_clock(std::time::Duration::ZERO);
        let report = engine.run(&m, &Query::wcrt("rt"), &ctx).unwrap();
        // At least the first run always happens; its maximum is still a
        // sound lower bound (the task runs 2 ms in isolation).
        let lb = report.estimates[0].estimate.lower().unwrap();
        assert!(lb >= TimeValue::millis(2));
    }
}
