//! # tempo-sim — discrete-event simulation of architecture models
//!
//! This crate is the stand-in for the POOSL/SHESIM discrete-event simulation
//! used as a comparator in Section 5 of the paper.  It executes an
//! [`tempo_arch::ArchitectureModel`] concretely: stimulus generators draw
//! event arrivals according to the scenario's event model (with randomized
//! offsets and jitter), jobs travel through their scenario's step chain, and
//! every processor/bus dispatches pending jobs according to its scheduling
//! policy (including preemption).
//!
//! A simulation observes *some* schedules, so the maximum response time it
//! reports is a **lower bound** on the true worst case — exactly the
//! relationship the paper points out when comparing POOSL with UPPAAL
//! ("the worst-case instance is not necessarily found by simulation").
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod generator;
mod sim_engine;

pub use engine::{simulate, SimConfig, SimError, SimReport};
pub use generator::StimulusGenerator;
pub use sim_engine::SimEngine;

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_arch::model::{
        ArchitectureModel, EventModel, MeasurePoint, Requirement, Scenario, SchedulingPolicy, Step,
    };
    use tempo_arch::time::TimeValue;

    fn two_task_model(policy: SchedulingPolicy) -> ArchitectureModel {
        let mut m = ArchitectureModel::new("sim-test");
        let cpu = m.add_processor("CPU", 1, policy);
        let hi = m.add_scenario(Scenario {
            name: "hi".into(),
            stimulus: EventModel::Periodic {
                period: TimeValue::millis(20),
            },
            priority: 0,
            steps: vec![Step::Execute {
                operation: "short".into(),
                instructions: 2_000,
                on: cpu,
            }],
        });
        let lo = m.add_scenario(Scenario {
            name: "lo".into(),
            stimulus: EventModel::Periodic {
                period: TimeValue::millis(50),
            },
            priority: 1,
            steps: vec![Step::Execute {
                operation: "long".into(),
                instructions: 10_000,
                on: cpu,
            }],
        });
        m.add_requirement(Requirement {
            name: "hi-rt".into(),
            scenario: hi,
            from: MeasurePoint::Stimulus,
            to: MeasurePoint::AfterStep(0),
            deadline: TimeValue::millis(20),
        });
        m.add_requirement(Requirement {
            name: "lo-rt".into(),
            scenario: lo,
            from: MeasurePoint::Stimulus,
            to: MeasurePoint::AfterStep(0),
            deadline: TimeValue::millis(50),
        });
        m
    }

    #[test]
    fn simulation_is_bounded_by_exact_wcrt() {
        for policy in [
            SchedulingPolicy::FixedPriorityPreemptive,
            SchedulingPolicy::FixedPriorityNonPreemptive,
            SchedulingPolicy::NonPreemptiveNd,
        ] {
            let m = two_task_model(policy);
            let cfg = SimConfig {
                horizon: TimeValue::seconds(2),
                runs: 5,
                seed: 7,
            };
            let reports = simulate(&m, &cfg).unwrap();
            for report in &reports {
                let exact = tempo_arch::engine::Session::new(
                    &m,
                    tempo_arch::AnalysisConfig::default(),
                )
                .unwrap()
                .wcrt(&report.requirement)
                .unwrap()
                .wcrt
                .unwrap()
                .as_millis_f64();
                let observed = report.max_response_ms();
                assert!(
                    observed <= exact + 1e-6,
                    "{policy:?} {}: simulated {observed} exceeds exact {exact}",
                    report.requirement
                );
                // The simulation must exercise the scenario at least once and
                // observe at least the raw execution time.
                assert!(report.observations > 10);
                assert!(observed >= 1.9, "{policy:?} {}: {observed}", report.requirement);
            }
        }
    }

    #[test]
    fn preemptive_scheduling_lowers_high_priority_response() {
        let cfg = SimConfig {
            horizon: TimeValue::seconds(2),
            runs: 3,
            seed: 11,
        };
        let np = simulate(
            &two_task_model(SchedulingPolicy::FixedPriorityNonPreemptive),
            &cfg,
        )
        .unwrap();
        let pre = simulate(
            &two_task_model(SchedulingPolicy::FixedPriorityPreemptive),
            &cfg,
        )
        .unwrap();
        let hi_np = np.iter().find(|r| r.requirement == "hi-rt").unwrap();
        let hi_pre = pre.iter().find(|r| r.requirement == "hi-rt").unwrap();
        // Under preemption the short task never waits for the long one.
        assert!(hi_pre.max_response_ms() <= 2.0 + 1e-6);
        assert!(hi_np.max_response_ms() >= hi_pre.max_response_ms());
    }

    #[test]
    fn results_are_reproducible_for_a_fixed_seed() {
        let m = two_task_model(SchedulingPolicy::FixedPriorityPreemptive);
        let cfg = SimConfig {
            horizon: TimeValue::seconds(1),
            runs: 3,
            seed: 99,
        };
        let a = simulate(&m, &cfg).unwrap();
        let b = simulate(&m, &cfg).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.max_response_us, y.max_response_us);
            assert_eq!(x.observations, y.observations);
        }
        // A different seed generally explores different offsets.
        let c = simulate(
            &m,
            &SimConfig {
                seed: 100,
                ..cfg.clone()
            },
        )
        .unwrap();
        assert_eq!(a.len(), c.len());
    }
}
