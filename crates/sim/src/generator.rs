//! Stimulus generators: concrete arrival-time sequences for the five event
//! models.

use rand::rngs::StdRng;
use rand::Rng;
use tempo_arch::model::EventModel;

/// Generates successive arrival times (in µs) for one scenario's stimulus.
#[derive(Clone, Debug)]
pub struct StimulusGenerator {
    model: EventModel,
    /// Nominal release index (for periodic-with-jitter / burst models).
    next_index: u64,
    /// Time of the previously generated event (for sporadic / min-distance).
    last_arrival: f64,
    /// Random phase of the stream, drawn once per run.
    offset: f64,
}

impl StimulusGenerator {
    /// Creates a generator, drawing the per-run random parameters (offsets)
    /// from `rng`.
    pub fn new(model: &EventModel, rng: &mut StdRng) -> StimulusGenerator {
        let offset = match model {
            EventModel::PeriodicOffset { offset, .. } => offset.as_micros_f64(),
            EventModel::Periodic { period } => rng.gen_range(0.0..period.as_micros_f64()),
            EventModel::Sporadic { min_interarrival } => {
                rng.gen_range(0.0..min_interarrival.as_micros_f64())
            }
            EventModel::PeriodicJitter { period, .. } | EventModel::Burst { period, .. } => {
                rng.gen_range(0.0..period.as_micros_f64())
            }
        };
        StimulusGenerator {
            model: model.clone(),
            next_index: 0,
            last_arrival: f64::NEG_INFINITY,
            offset,
        }
    }

    /// The arrival time (µs) of the next stimulus.
    pub fn next_arrival(&mut self, rng: &mut StdRng) -> f64 {
        let t = match &self.model {
            EventModel::PeriodicOffset { period, .. } | EventModel::Periodic { period } => {
                self.offset + self.next_index as f64 * period.as_micros_f64()
            }
            EventModel::Sporadic { min_interarrival } => {
                // Sporadic: at least the minimal inter-arrival time, with a
                // random extra gap (events may be late or absent).
                let gap = min_interarrival.as_micros_f64()
                    * (1.0 + rng.gen_range(0.0..0.5_f64).powi(2));
                if self.last_arrival.is_finite() {
                    self.last_arrival + gap
                } else {
                    self.offset
                }
            }
            EventModel::PeriodicJitter { period, jitter } => {
                self.offset
                    + self.next_index as f64 * period.as_micros_f64()
                    + rng.gen_range(0.0..=jitter.as_micros_f64().max(f64::MIN_POSITIVE))
            }
            EventModel::Burst {
                period,
                jitter,
                min_separation,
            } => {
                let nominal = self.offset
                    + self.next_index as f64 * period.as_micros_f64()
                    + rng.gen_range(0.0..=jitter.as_micros_f64().max(f64::MIN_POSITIVE));
                let sep = min_separation.as_micros_f64();
                if self.last_arrival.is_finite() {
                    nominal.max(self.last_arrival + sep)
                } else {
                    nominal
                }
            }
        };
        // Arrival times never go backwards.
        let t = if self.last_arrival.is_finite() {
            t.max(self.last_arrival)
        } else {
            t
        };
        self.next_index += 1;
        self.last_arrival = t;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tempo_arch::time::TimeValue;

    fn collect(model: EventModel, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = StimulusGenerator::new(&model, &mut rng);
        (0..n).map(|_| g.next_arrival(&mut rng)).collect()
    }

    #[test]
    fn periodic_offset_is_exact() {
        let ts = collect(
            EventModel::PeriodicOffset {
                period: TimeValue::millis(10),
                offset: TimeValue::ZERO,
            },
            4,
            1,
        );
        assert_eq!(ts, vec![0.0, 10_000.0, 20_000.0, 30_000.0]);
    }

    #[test]
    fn periodic_unknown_offset_keeps_period() {
        let ts = collect(
            EventModel::Periodic {
                period: TimeValue::millis(10),
            },
            5,
            2,
        );
        for w in ts.windows(2) {
            assert!((w[1] - w[0] - 10_000.0).abs() < 1e-9);
        }
        assert!(ts[0] >= 0.0 && ts[0] < 10_000.0);
    }

    #[test]
    fn sporadic_respects_min_interarrival() {
        let ts = collect(
            EventModel::Sporadic {
                min_interarrival: TimeValue::millis(10),
            },
            20,
            3,
        );
        for w in ts.windows(2) {
            assert!(w[1] - w[0] >= 10_000.0 - 1e-9);
        }
    }

    #[test]
    fn jitter_stays_within_window_and_is_monotone() {
        let ts = collect(
            EventModel::PeriodicJitter {
                period: TimeValue::millis(10),
                jitter: TimeValue::millis(10),
            },
            50,
            4,
        );
        for (i, w) in ts.windows(2).enumerate() {
            assert!(w[1] >= w[0], "event {i} goes backwards");
        }
    }

    #[test]
    fn burst_respects_min_separation() {
        let ts = collect(
            EventModel::Burst {
                period: TimeValue::millis(10),
                jitter: TimeValue::millis(20),
                min_separation: TimeValue::millis(2),
            },
            50,
            5,
        );
        for w in ts.windows(2) {
            assert!(w[1] - w[0] >= 2_000.0 - 1e-9);
        }
    }
}
