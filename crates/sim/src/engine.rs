//! The discrete-event simulation engine.

use crate::generator::StimulusGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tempo_arch::model::{
    ArchitectureModel, MeasurePoint, SchedulingPolicy, Step,
};
use tempo_arch::time::TimeValue;

/// Configuration of a simulation campaign.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Simulated time per run.
    pub horizon: TimeValue,
    /// Number of independent runs (different random offsets/jitter).
    pub runs: usize,
    /// Base RNG seed; run `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon: TimeValue::seconds(60),
            runs: 10,
            seed: 0x51u64,
        }
    }
}

/// Maximum observed response time of one requirement across all runs.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Requirement name.
    pub requirement: String,
    /// Largest observed response time, in µs (0 if never observed).
    pub max_response_us: f64,
    /// Number of completed activations observed.
    pub observations: usize,
}

impl SimReport {
    /// The observation as a typed [`tempo_arch::engine::Estimate`]: a
    /// simulation witnesses *some* schedules, so its maximum is a lower bound
    /// on the true worst case (rounded to the nearest nanosecond to fit the
    /// exact-rational time domain).
    pub fn estimate(&self) -> tempo_arch::engine::Estimate {
        let ns = (self.max_response_us * 1_000.0).round().max(0.0) as i128;
        tempo_arch::engine::Estimate::LowerBound(TimeValue::ratio_us(ns, 1_000))
    }

    /// Largest observed response time in milliseconds (routed through
    /// [`Estimate::as_millis_f64`](tempo_arch::engine::Estimate::as_millis_f64),
    /// the shared conversion path).
    pub fn max_response_ms(&self) -> f64 {
        self.estimate().as_millis_f64()
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: WCRT {} ({} observations)",
            self.requirement,
            self.estimate(),
            self.observations
        )
    }
}

/// Errors of the simulator.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The architecture model is invalid.
    Model(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Model(m) => write!(f, "invalid model: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Simulation event kinds.
#[derive(Clone, Debug, PartialEq)]
enum EventKind {
    /// A stimulus of the given scenario arrives.
    Stimulus { scenario: usize },
    /// A job becomes ready at the resource executing the given step.
    StepReady { job: usize, step: usize },
    /// The job running on the resource completes, if `token` is still valid.
    Completion { resource: usize, token: u64 },
}

#[derive(Clone, Debug)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: the BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A job instance traveling through its scenario's step chain.
#[derive(Clone, Debug)]
struct Job {
    scenario: usize,
    release: f64,
    step_completion: Vec<Option<f64>>,
}

/// A queued piece of work on a resource.
#[derive(Clone, Debug)]
struct QueuedWork {
    job: usize,
    step: usize,
    priority: u32,
    remaining_us: f64,
    enqueue_seq: u64,
}

/// The running piece of work on a resource.
#[derive(Clone, Debug)]
struct RunningWork {
    work: QueuedWork,
    started_at: f64,
    token: u64,
}

struct Resource {
    policy: SchedulingPolicy,
    queue: Vec<QueuedWork>,
    running: Option<RunningWork>,
    next_token: u64,
}

/// Runs the simulation campaign and returns one report per requirement.
pub fn simulate(model: &ArchitectureModel, cfg: &SimConfig) -> Result<Vec<SimReport>, SimError> {
    model.validate().map_err(|e| SimError::Model(e.to_string()))?;
    let mut reports: Vec<SimReport> = model
        .requirements
        .iter()
        .map(|r| SimReport {
            requirement: r.name.clone(),
            max_response_us: 0.0,
            observations: 0,
        })
        .collect();
    for run in 0..cfg.runs.max(1) {
        let jobs = simulate_once(model, cfg.horizon.as_micros_f64(), cfg.seed + run as u64);
        collect_responses(model, &jobs, &mut reports);
    }
    Ok(reports)
}

fn resource_of(model: &ArchitectureModel, step: &Step) -> usize {
    match step {
        Step::Execute { on, .. } => on.0,
        Step::Transfer { over, .. } => model.processors.len() + over.0,
    }
}

fn resource_policy(model: &ArchitectureModel, resource: usize) -> SchedulingPolicy {
    if resource < model.processors.len() {
        model.processors[resource].policy
    } else {
        // Message transfers are never preempted.
        SchedulingPolicy::FixedPriorityNonPreemptive
    }
}

fn simulate_once(model: &ArchitectureModel, horizon_us: f64, seed: u64) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_resources = model.processors.len() + model.buses.len();
    let mut resources: Vec<Resource> = (0..num_resources)
        .map(|r| Resource {
            policy: resource_policy(model, r),
            queue: Vec::new(),
            running: None,
            next_token: 0,
        })
        .collect();
    let mut generators: Vec<StimulusGenerator> = model
        .scenarios
        .iter()
        .map(|s| StimulusGenerator::new(&s.stimulus, &mut rng))
        .collect();

    let mut jobs: Vec<Job> = Vec::new();
    let mut events: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let push = |events: &mut BinaryHeap<Event>, seq: &mut u64, time: f64, kind: EventKind| {
        *seq += 1;
        events.push(Event {
            time,
            seq: *seq,
            kind,
        });
    };

    // Prime the stimulus streams.
    for (si, g) in generators.iter_mut().enumerate() {
        let t = g.next_arrival(&mut rng);
        if t <= horizon_us {
            push(&mut events, &mut seq, t, EventKind::Stimulus { scenario: si });
        }
    }

    while let Some(ev) = events.pop() {
        let now = ev.time;
        if now > horizon_us {
            break;
        }
        match ev.kind {
            EventKind::Stimulus { scenario } => {
                let job_idx = jobs.len();
                jobs.push(Job {
                    scenario,
                    release: now,
                    step_completion: vec![None; model.scenarios[scenario].steps.len()],
                });
                push(
                    &mut events,
                    &mut seq,
                    now,
                    EventKind::StepReady { job: job_idx, step: 0 },
                );
                let t = generators[scenario].next_arrival(&mut rng);
                if t <= horizon_us {
                    push(&mut events, &mut seq, t, EventKind::Stimulus { scenario });
                }
            }
            EventKind::StepReady { job, step } => {
                let scenario = jobs[job].scenario;
                let step_def = &model.scenarios[scenario].steps[step];
                let resource = resource_of(model, step_def);
                let service = model.step_service_time(step_def).as_micros_f64();
                let work = QueuedWork {
                    job,
                    step,
                    priority: model.scenarios[scenario].priority,
                    remaining_us: service,
                    enqueue_seq: seq,
                };
                resources[resource].queue.push(work);
                dispatch(&mut resources[resource], resource, now, &mut events, &mut seq);
            }
            EventKind::Completion { resource, token } => {
                let finished = {
                    let res = &mut resources[resource];
                    match &res.running {
                        Some(r) if r.token == token => res.running.take().map(|r| r.work),
                        _ => None,
                    }
                };
                if let Some(work) = finished {
                    jobs[work.job].step_completion[work.step] = Some(now);
                    let scenario = jobs[work.job].scenario;
                    if work.step + 1 < model.scenarios[scenario].steps.len() {
                        push(
                            &mut events,
                            &mut seq,
                            now,
                            EventKind::StepReady {
                                job: work.job,
                                step: work.step + 1,
                            },
                        );
                    }
                    dispatch(&mut resources[resource], resource, now, &mut events, &mut seq);
                }
            }
        }
    }
    jobs
}

/// (Re)decides what runs on a resource at time `now`.
fn dispatch(
    res: &mut Resource,
    resource_index: usize,
    now: f64,
    events: &mut BinaryHeap<Event>,
    seq: &mut u64,
) {
    let preemptive = res.policy == SchedulingPolicy::FixedPriorityPreemptive;
    // Preemption check: a strictly more important queued job interrupts the
    // running one.
    if preemptive {
        if let Some(best) = best_index(&res.queue, res.policy) {
            let should_preempt = match &res.running {
                Some(running) => res.queue[best].priority < running.work.priority,
                None => false,
            };
            if should_preempt {
                let mut running = res.running.take().expect("running job present");
                let elapsed = now - running.started_at;
                running.work.remaining_us = (running.work.remaining_us - elapsed).max(0.0);
                // Invalidate its scheduled completion by abandoning the token.
                res.queue.push(running.work);
            }
        }
    }
    if res.running.is_none() {
        if let Some(best) = best_index(&res.queue, res.policy) {
            let work = res.queue.swap_remove(best);
            res.next_token += 1;
            let token = res.next_token;
            let completion_time = now + work.remaining_us;
            res.running = Some(RunningWork {
                work,
                started_at: now,
                token,
            });
            *seq += 1;
            events.push(Event {
                time: completion_time,
                seq: *seq,
                kind: EventKind::Completion {
                    resource: resource_index,
                    token,
                },
            });
        }
    }
}

/// Index of the next job to serve according to the policy.
fn best_index(queue: &[QueuedWork], policy: SchedulingPolicy) -> Option<usize> {
    if queue.is_empty() {
        return None;
    }
    let idx = match policy {
        SchedulingPolicy::NonPreemptiveNd => {
            // The simulator explores one concrete schedule; FIFO is as good a
            // resolution of the non-determinism as any.
            queue
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.enqueue_seq)
                .map(|(i, _)| i)
        }
        SchedulingPolicy::FixedPriorityPreemptive | SchedulingPolicy::FixedPriorityNonPreemptive => {
            queue
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| (w.priority, w.enqueue_seq))
                .map(|(i, _)| i)
        }
    };
    idx
}

/// Extracts per-requirement response times from the finished jobs.
fn collect_responses(model: &ArchitectureModel, jobs: &[Job], reports: &mut [SimReport]) {
    for (req, report) in model.requirements.iter().zip(reports.iter_mut()) {
        let to = match req.to {
            MeasurePoint::AfterStep(i) => i,
            MeasurePoint::Stimulus => continue,
        };
        for job in jobs.iter().filter(|j| j.scenario == req.scenario.0) {
            let Some(end) = job.step_completion.get(to).copied().flatten() else {
                continue;
            };
            let start = match req.from {
                MeasurePoint::Stimulus => Some(job.release),
                MeasurePoint::AfterStep(i) => job.step_completion.get(i).copied().flatten(),
            };
            let Some(start) = start else { continue };
            let response = end - start;
            report.observations += 1;
            if response > report.max_response_us {
                report.max_response_us = response;
            }
        }
    }
}
