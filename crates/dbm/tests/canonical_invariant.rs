//! Randomized invariant check: every public mutating DBM operation keeps the
//! matrix in canonical (shortest-path closed) form, so `close` is always a
//! no-op on the result.  This complements the proptest suite by checking the
//! invariant after *every* intermediate operation of long random sequences.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tempo_dbm::{Bound, Clock, Dbm, Relation};

#[test]
fn operations_preserve_canonical_form() {
    let mut rng = StdRng::seed_from_u64(0xDB0);
    for trial in 0..5000 {
        let mut z = Dbm::zero(3);
        let mut history: Vec<String> = Vec::new();
        for _ in 0..12 {
            let desc = match rng.gen_range(0..8) {
                0 => {
                    z.up();
                    "up".to_string()
                }
                1 => {
                    let c = rng.gen_range(1..=3);
                    let m = rng.gen_range(0..50);
                    let s = rng.gen_bool(0.5);
                    z.constrain(Clock(c), Clock::REF, Bound::new(m, s));
                    format!("x{c} <= {m} (strict={s})")
                }
                2 => {
                    let c = rng.gen_range(1..=3);
                    let m: i64 = rng.gen_range(0..50);
                    let s = rng.gen_bool(0.5);
                    z.constrain(Clock::REF, Clock(c), Bound::new(-m, s));
                    format!("x{c} >= {m} (strict={s})")
                }
                3 => {
                    let a = rng.gen_range(1..=3);
                    let b = rng.gen_range(1..=3);
                    let m = rng.gen_range(-30..30);
                    let s = rng.gen_bool(0.5);
                    if a != b {
                        z.constrain(Clock(a), Clock(b), Bound::new(m, s));
                    }
                    format!("x{a} - x{b} <= {m} (strict={s})")
                }
                4 => {
                    let c = rng.gen_range(1..=3);
                    let v = rng.gen_range(0..20);
                    z.reset(Clock(c), v);
                    format!("reset x{c} := {v}")
                }
                5 => {
                    let c = rng.gen_range(1..=3);
                    z.free(Clock(c));
                    format!("free x{c}")
                }
                6 => {
                    let a = rng.gen_range(1..=3);
                    let b = rng.gen_range(1..=3);
                    if a != b {
                        z.copy_clock(Clock(a), Clock(b));
                    }
                    format!("x{a} := x{b}")
                }
                _ => {
                    z.down();
                    "down".to_string()
                }
            };
            history.push(desc);
            let mut closed = z.clone();
            closed.close();
            assert_eq!(
                closed.relation(&z),
                Relation::Equal,
                "trial {trial}: canonical form lost after {history:?}\n{z:?}"
            );
            if z.is_empty() {
                break;
            }
        }
    }
}
