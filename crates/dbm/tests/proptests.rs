//! Property-based tests for the DBM library.
//!
//! The strategy generates random zones by applying random sequences of
//! operations (delay, constrain, reset) to the origin zone, plus random
//! concrete valuations, and checks the algebraic laws that forward
//! reachability relies on.

use proptest::prelude::*;
use tempo_dbm::{Bound, Clock, Constraint, Dbm, Federation, Relation};

const NUM_CLOCKS: usize = 3;

/// One symbolic operation applied while generating a random zone.
#[derive(Clone, Debug)]
enum Op {
    Up,
    UpperBound { clock: u32, value: i64, strict: bool },
    LowerBound { clock: u32, value: i64, strict: bool },
    Diff { a: u32, b: u32, value: i64, strict: bool },
    Reset { clock: u32, value: i64 },
    Free { clock: u32 },
}

fn clock_idx() -> impl Strategy<Value = u32> {
    1..=(NUM_CLOCKS as u32)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Up),
        (clock_idx(), 0i64..50, any::<bool>())
            .prop_map(|(clock, value, strict)| Op::UpperBound { clock, value, strict }),
        (clock_idx(), 0i64..50, any::<bool>())
            .prop_map(|(clock, value, strict)| Op::LowerBound { clock, value, strict }),
        (clock_idx(), clock_idx(), -30i64..30, any::<bool>())
            .prop_map(|(a, b, value, strict)| Op::Diff { a, b, value, strict }),
        (clock_idx(), 0i64..20).prop_map(|(clock, value)| Op::Reset { clock, value }),
        clock_idx().prop_map(|clock| Op::Free { clock }),
    ]
}

fn apply(z: &mut Dbm, op: &Op) {
    match *op {
        Op::Up => {
            z.up();
        }
        Op::UpperBound { clock, value, strict } => {
            z.constrain(Clock(clock), Clock::REF, Bound::new(value, strict));
        }
        Op::LowerBound { clock, value, strict } => {
            z.constrain(Clock::REF, Clock(clock), Bound::new(-value, strict));
        }
        Op::Diff { a, b, value, strict } => {
            if a != b {
                z.constrain(Clock(a), Clock(b), Bound::new(value, strict));
            }
        }
        Op::Reset { clock, value } => {
            z.reset(Clock(clock), value);
        }
        Op::Free { clock } => {
            z.free(Clock(clock));
        }
    }
}

fn random_zone() -> impl Strategy<Value = Dbm> {
    proptest::collection::vec(op_strategy(), 0..12).prop_map(|ops| {
        let mut z = Dbm::zero(NUM_CLOCKS);
        for op in &ops {
            apply(&mut z, op);
        }
        z
    })
}

fn valuation() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(0i64..60, NUM_CLOCKS).prop_map(|mut v| {
        v.insert(0, 0);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Re-closing a canonical zone changes nothing.
    #[test]
    fn close_is_idempotent(z in random_zone()) {
        let mut closed = z.clone();
        closed.close();
        prop_assert_eq!(closed.relation(&z), Relation::Equal);
    }

    /// The membership predicate agrees with the constraint semantics:
    /// a point is in `z ∧ c` iff it is in `z` and satisfies `c`.
    #[test]
    fn constrain_is_intersection(z in random_zone(), v in valuation(),
                                 clock in clock_idx(), m in 0i64..60, strict in any::<bool>()) {
        let c = Constraint::upper(Clock(clock), Bound::new(m, strict));
        let mut zc = z.clone();
        zc.and(&c);
        let expected = z.contains_point(&v) && c.holds(&v);
        prop_assert_eq!(zc.contains_point(&v), expected);
    }

    /// `up` only adds valuations reachable by uniform delay and never loses points.
    #[test]
    fn up_is_extensive(z in random_zone(), v in valuation(), d in 0i64..40) {
        let mut up = z.clone();
        up.up();
        if z.contains_point(&v) {
            prop_assert!(up.contains_point(&v));
            let delayed: Vec<i64> =
                v.iter().enumerate().map(|(i, &x)| if i == 0 { 0 } else { x + d }).collect();
            prop_assert!(up.contains_point(&delayed));
        }
    }

    /// After `reset(x, k)` every member valuation has `x == k`, and the other
    /// clocks keep values they could have had before.
    #[test]
    fn reset_post_condition(z in random_zone(), clock in clock_idx(), k in 0i64..20, v in valuation()) {
        let mut r = z.clone();
        r.reset(Clock(clock), k);
        prop_assert_eq!(r.is_empty(), z.is_empty());
        if r.contains_point(&v) {
            prop_assert_eq!(v[clock as usize], k);
        }
        if z.contains_point(&v) {
            let mut w = v.clone();
            w[clock as usize] = k;
            prop_assert!(r.contains_point(&w));
        }
    }

    /// Zone inclusion is consistent with point membership.
    #[test]
    fn inclusion_sound_for_points(a in random_zone(), b in random_zone(), v in valuation()) {
        if a.includes(&b) && b.contains_point(&v) {
            prop_assert!(a.contains_point(&v));
        }
    }

    /// `relation` is antisymmetric and consistent with `includes`.
    #[test]
    fn relation_consistency(a in random_zone(), b in random_zone()) {
        match a.relation(&b) {
            Relation::Equal => {
                prop_assert!(a.includes(&b) && b.includes(&a));
                prop_assert_eq!(b.relation(&a), Relation::Equal);
            }
            Relation::Subset => {
                prop_assert!(b.includes(&a));
                prop_assert_eq!(b.relation(&a), Relation::Superset);
            }
            Relation::Superset => {
                prop_assert!(a.includes(&b));
                prop_assert_eq!(b.relation(&a), Relation::Subset);
            }
            Relation::Incomparable => {
                prop_assert_eq!(b.relation(&a), Relation::Incomparable);
            }
        }
    }

    /// Extrapolation is a sound abstraction: it only grows the zone.
    #[test]
    fn extrapolation_is_extensive(z in random_zone(),
                                  k in proptest::collection::vec(0i64..30, NUM_CLOCKS + 1)) {
        let mut e = z.clone();
        e.extrapolate_max_bounds(&k);
        prop_assert!(e.includes(&z));
        // And it is idempotent.
        let once = e.clone();
        e.extrapolate_max_bounds(&k);
        prop_assert_eq!(e.relation(&once), Relation::Equal);
    }

    /// LU extrapolation is at least as coarse as ExtraM with the same constants.
    #[test]
    fn lu_is_coarser_than_m(z in random_zone(),
                            k in proptest::collection::vec(0i64..30, NUM_CLOCKS + 1)) {
        let mut m = z.clone();
        m.extrapolate_max_bounds(&k);
        let mut lu = z.clone();
        lu.extrapolate_lu(&k, &k);
        prop_assert!(lu.includes(&z));
        // With L = U = k, ExtraLU and ExtraM coincide.
        prop_assert_eq!(lu.relation(&m), Relation::Equal);
    }

    /// Intersection is the greatest lower bound w.r.t. point membership.
    #[test]
    fn intersection_semantics(a in random_zone(), b in random_zone(), v in valuation()) {
        let mut i = a.clone();
        i.intersect(&b);
        prop_assert_eq!(i.contains_point(&v), a.contains_point(&v) && b.contains_point(&v));
    }

    /// Federations never lose points when zones are added, and subsumption
    /// does not change the represented set.
    #[test]
    fn federation_add_preserves_points(zones in proptest::collection::vec(random_zone(), 1..5),
                                       v in valuation()) {
        let mut f = Federation::empty(NUM_CLOCKS);
        let mut expected = false;
        for z in &zones {
            expected |= z.contains_point(&v);
            f.add(z.clone());
        }
        prop_assert_eq!(f.contains_point(&v), expected);
    }

    /// `free` makes the freed clock unconstrained while keeping the projection
    /// of the other clocks.
    #[test]
    fn free_post_condition(z in random_zone(), clock in clock_idx(), v in valuation(), nv in 0i64..60) {
        let mut fz = z.clone();
        fz.free(Clock(clock));
        if z.contains_point(&v) {
            let mut w = v.clone();
            w[clock as usize] = nv;
            prop_assert!(fz.contains_point(&w));
        }
    }

    /// Tightening a single entry of a random canonical matrix and re-closing
    /// with the incremental `close1` yields bound-for-bound the same matrix
    /// as a full Floyd–Warshall `close` — including agreeing on emptiness.
    #[test]
    fn close1_matches_full_close(z in random_zone(),
                                 x in 0u32..=(NUM_CLOCKS as u32),
                                 y in 0u32..=(NUM_CLOCKS as u32),
                                 delta in 1i64..25, m in -40i64..40, strict in any::<bool>()) {
        if x == y || z.is_empty() {
            return;
        }
        let current = z.get(Clock(x), Clock(y));
        // Derive a strictly tighter bound so no case is discarded: any finite
        // bound is tighter than ∞, and lowering the constant is tighter
        // regardless of strictness.
        let tightened = match current.finite_constant() {
            None => Bound::new(m, strict),
            Some(c) => Bound::new(c - delta, strict),
        };
        prop_assert!(tightened < current);
        let mut incremental = z.clone();
        incremental.set_raw(Clock(x), Clock(y), tightened);
        incremental.close1(Clock(x), Clock(y));
        let mut full = z.clone();
        full.set_raw(Clock(x), Clock(y), tightened);
        full.close();
        prop_assert_eq!(incremental.is_empty(), full.is_empty());
        if !incremental.is_empty() {
            for i in 0..=NUM_CLOCKS as u32 {
                for j in 0..=NUM_CLOCKS as u32 {
                    prop_assert_eq!(
                        incremental.get(Clock(i), Clock(j)),
                        full.get(Clock(i), Clock(j)),
                        "entry ({}, {}) diverges", i, j
                    );
                }
            }
        }
    }

    /// Bound construction round-trips through constant/strictness/raw, the
    /// tightness order is the lexicographic (constant, strictness) order, and
    /// in-range additions are exact.
    #[test]
    fn bound_roundtrip_and_ordering(m1 in any::<i32>(), s1 in any::<bool>(),
                                    m2 in any::<i32>(), s2 in any::<bool>()) {
        let b1 = Bound::new(m1 as i64, s1);
        let b2 = Bound::new(m2 as i64, s2);
        prop_assert_eq!(b1.constant(), m1 as i64);
        prop_assert_eq!(b1.is_strict(), s1);
        prop_assert_eq!(Bound::from_raw(b1.raw()), b1);
        // Strict sorts before weak at the same constant, so compare on
        // (constant, weakness).
        prop_assert_eq!(b1.cmp(&b2), (m1, !s1).cmp(&(m2, !s2)));
        prop_assert!(b1 < Bound::INFINITY);
        let sum = b1 + b2;
        prop_assert_eq!(sum.constant(), m1 as i64 + m2 as i64);
        prop_assert_eq!(sum.is_strict(), s1 || s2);
    }

    /// At the limits of the `2·m + weak_bit` encoding: extreme constants
    /// round-trip, stay ordered below ∞, and additions that would leave the
    /// representable range saturate to ∞ instead of corrupting the order.
    #[test]
    fn bound_encoding_limits(d1 in 0i64..1000, d2 in 0i64..1000,
                             s1 in any::<bool>(), s2 in any::<bool>()) {
        // bound.rs encoding limit: constants live in [-MAX_CONST, MAX_CONST].
        const MAX_CONST: i64 = (i64::MAX >> 2) - 1;
        let hi = Bound::new(MAX_CONST - d1, s1);
        let lo = Bound::new(-MAX_CONST + d2, s2);
        prop_assert_eq!(hi.constant(), MAX_CONST - d1);
        prop_assert_eq!(lo.constant(), -MAX_CONST + d2);
        prop_assert_eq!(Bound::from_raw(hi.raw()), hi);
        prop_assert_eq!(Bound::from_raw(lo.raw()), lo);
        prop_assert!(lo < hi);
        prop_assert!(hi < Bound::INFINITY);
        // Spanning sums stay exact.
        let sum = hi + lo;
        prop_assert_eq!(sum.constant(), (MAX_CONST - d1) + (-MAX_CONST + d2));
        prop_assert_eq!(sum.is_strict(), s1 || s2);
        // Sums past MAX_CONST saturate to ∞ (sound: ∞ never wins a min);
        // everything at or below it is exact.
        let bump = Bound::new(d2, s2);
        let pushed = hi + bump;
        if MAX_CONST - d1 + d2 > MAX_CONST {
            prop_assert!(pushed.is_infinity());
        } else {
            prop_assert_eq!(pushed.constant(), MAX_CONST - d1 + d2);
        }
    }
}
