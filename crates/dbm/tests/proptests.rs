//! Property-based tests for the DBM library.
//!
//! The strategy generates random zones by applying random sequences of
//! operations (delay, constrain, reset) to the origin zone, plus random
//! concrete valuations, and checks the algebraic laws that forward
//! reachability relies on.

use proptest::prelude::*;
use tempo_dbm::{Bound, Clock, Constraint, Dbm, Federation, Relation};

const NUM_CLOCKS: usize = 3;

/// One symbolic operation applied while generating a random zone.
#[derive(Clone, Debug)]
enum Op {
    Up,
    UpperBound { clock: u32, value: i64, strict: bool },
    LowerBound { clock: u32, value: i64, strict: bool },
    Diff { a: u32, b: u32, value: i64, strict: bool },
    Reset { clock: u32, value: i64 },
    Free { clock: u32 },
}

fn clock_idx() -> impl Strategy<Value = u32> {
    1..=(NUM_CLOCKS as u32)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Up),
        (clock_idx(), 0i64..50, any::<bool>())
            .prop_map(|(clock, value, strict)| Op::UpperBound { clock, value, strict }),
        (clock_idx(), 0i64..50, any::<bool>())
            .prop_map(|(clock, value, strict)| Op::LowerBound { clock, value, strict }),
        (clock_idx(), clock_idx(), -30i64..30, any::<bool>())
            .prop_map(|(a, b, value, strict)| Op::Diff { a, b, value, strict }),
        (clock_idx(), 0i64..20).prop_map(|(clock, value)| Op::Reset { clock, value }),
        clock_idx().prop_map(|clock| Op::Free { clock }),
    ]
}

fn apply(z: &mut Dbm, op: &Op) {
    match *op {
        Op::Up => {
            z.up();
        }
        Op::UpperBound { clock, value, strict } => {
            z.constrain(Clock(clock), Clock::REF, Bound::new(value, strict));
        }
        Op::LowerBound { clock, value, strict } => {
            z.constrain(Clock::REF, Clock(clock), Bound::new(-value, strict));
        }
        Op::Diff { a, b, value, strict } => {
            if a != b {
                z.constrain(Clock(a), Clock(b), Bound::new(value, strict));
            }
        }
        Op::Reset { clock, value } => {
            z.reset(Clock(clock), value);
        }
        Op::Free { clock } => {
            z.free(Clock(clock));
        }
    }
}

fn random_zone() -> impl Strategy<Value = Dbm> {
    proptest::collection::vec(op_strategy(), 0..12).prop_map(|ops| {
        let mut z = Dbm::zero(NUM_CLOCKS);
        for op in &ops {
            apply(&mut z, op);
        }
        z
    })
}

fn valuation() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(0i64..60, NUM_CLOCKS).prop_map(|mut v| {
        v.insert(0, 0);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Re-closing a canonical zone changes nothing.
    #[test]
    fn close_is_idempotent(z in random_zone()) {
        let mut closed = z.clone();
        closed.close();
        prop_assert_eq!(closed.relation(&z), Relation::Equal);
    }

    /// The membership predicate agrees with the constraint semantics:
    /// a point is in `z ∧ c` iff it is in `z` and satisfies `c`.
    #[test]
    fn constrain_is_intersection(z in random_zone(), v in valuation(),
                                 clock in clock_idx(), m in 0i64..60, strict in any::<bool>()) {
        let c = Constraint::upper(Clock(clock), Bound::new(m, strict));
        let mut zc = z.clone();
        zc.and(&c);
        let expected = z.contains_point(&v) && c.holds(&v);
        prop_assert_eq!(zc.contains_point(&v), expected);
    }

    /// `up` only adds valuations reachable by uniform delay and never loses points.
    #[test]
    fn up_is_extensive(z in random_zone(), v in valuation(), d in 0i64..40) {
        let mut up = z.clone();
        up.up();
        if z.contains_point(&v) {
            prop_assert!(up.contains_point(&v));
            let delayed: Vec<i64> =
                v.iter().enumerate().map(|(i, &x)| if i == 0 { 0 } else { x + d }).collect();
            prop_assert!(up.contains_point(&delayed));
        }
    }

    /// After `reset(x, k)` every member valuation has `x == k`, and the other
    /// clocks keep values they could have had before.
    #[test]
    fn reset_post_condition(z in random_zone(), clock in clock_idx(), k in 0i64..20, v in valuation()) {
        let mut r = z.clone();
        r.reset(Clock(clock), k);
        prop_assert_eq!(r.is_empty(), z.is_empty());
        if r.contains_point(&v) {
            prop_assert_eq!(v[clock as usize], k);
        }
        if z.contains_point(&v) {
            let mut w = v.clone();
            w[clock as usize] = k;
            prop_assert!(r.contains_point(&w));
        }
    }

    /// Zone inclusion is consistent with point membership.
    #[test]
    fn inclusion_sound_for_points(a in random_zone(), b in random_zone(), v in valuation()) {
        if a.includes(&b) && b.contains_point(&v) {
            prop_assert!(a.contains_point(&v));
        }
    }

    /// `relation` is antisymmetric and consistent with `includes`.
    #[test]
    fn relation_consistency(a in random_zone(), b in random_zone()) {
        match a.relation(&b) {
            Relation::Equal => {
                prop_assert!(a.includes(&b) && b.includes(&a));
                prop_assert_eq!(b.relation(&a), Relation::Equal);
            }
            Relation::Subset => {
                prop_assert!(b.includes(&a));
                prop_assert_eq!(b.relation(&a), Relation::Superset);
            }
            Relation::Superset => {
                prop_assert!(a.includes(&b));
                prop_assert_eq!(b.relation(&a), Relation::Subset);
            }
            Relation::Incomparable => {
                prop_assert_eq!(b.relation(&a), Relation::Incomparable);
            }
        }
    }

    /// Extrapolation is a sound abstraction: it only grows the zone.
    #[test]
    fn extrapolation_is_extensive(z in random_zone(),
                                  k in proptest::collection::vec(0i64..30, NUM_CLOCKS + 1)) {
        let mut e = z.clone();
        e.extrapolate_max_bounds(&k);
        prop_assert!(e.includes(&z));
        // And it is idempotent.
        let once = e.clone();
        e.extrapolate_max_bounds(&k);
        prop_assert_eq!(e.relation(&once), Relation::Equal);
    }

    /// LU extrapolation is at least as coarse as ExtraM with the same constants.
    #[test]
    fn lu_is_coarser_than_m(z in random_zone(),
                            k in proptest::collection::vec(0i64..30, NUM_CLOCKS + 1)) {
        let mut m = z.clone();
        m.extrapolate_max_bounds(&k);
        let mut lu = z.clone();
        lu.extrapolate_lu(&k, &k);
        prop_assert!(lu.includes(&z));
        // With L = U = k, ExtraLU and ExtraM coincide.
        prop_assert_eq!(lu.relation(&m), Relation::Equal);
    }

    /// Intersection is the greatest lower bound w.r.t. point membership.
    #[test]
    fn intersection_semantics(a in random_zone(), b in random_zone(), v in valuation()) {
        let mut i = a.clone();
        i.intersect(&b);
        prop_assert_eq!(i.contains_point(&v), a.contains_point(&v) && b.contains_point(&v));
    }

    /// Federations never lose points when zones are added, and subsumption
    /// does not change the represented set.
    #[test]
    fn federation_add_preserves_points(zones in proptest::collection::vec(random_zone(), 1..5),
                                       v in valuation()) {
        let mut f = Federation::empty(NUM_CLOCKS);
        let mut expected = false;
        for z in &zones {
            expected |= z.contains_point(&v);
            f.add(z.clone());
        }
        prop_assert_eq!(f.contains_point(&v), expected);
    }

    /// `free` makes the freed clock unconstrained while keeping the projection
    /// of the other clocks.
    #[test]
    fn free_post_condition(z in random_zone(), clock in clock_idx(), v in valuation(), nv in 0i64..60) {
        let mut fz = z.clone();
        fz.free(Clock(clock));
        if z.contains_point(&v) {
            let mut w = v.clone();
            w[clock as usize] = nv;
            prop_assert!(fz.contains_point(&w));
        }
    }
}
