//! Property-based tests for the dead-clock projection operations backing the
//! checker's active-clock reduction (`free_clock`, `reset_to_canonical`,
//! `restrict_to_active`): they must preserve the canonical form, be
//! idempotent, and be monotone with respect to zone inclusion — the three
//! laws the passed-list subsumption of the explorer relies on.

use proptest::prelude::*;
use tempo_dbm::{Bound, Clock, Dbm, Relation};

const NUM_CLOCKS: usize = 3;

/// One symbolic operation applied while generating a random zone (same
/// op-sequence generator as `proptests.rs`).
#[derive(Clone, Debug)]
enum Op {
    Up,
    UpperBound { clock: u32, value: i64, strict: bool },
    LowerBound { clock: u32, value: i64, strict: bool },
    Diff { a: u32, b: u32, value: i64, strict: bool },
    Reset { clock: u32, value: i64 },
    Free { clock: u32 },
}

fn clock_idx() -> impl Strategy<Value = u32> {
    1..=(NUM_CLOCKS as u32)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Up),
        (clock_idx(), 0i64..50, any::<bool>())
            .prop_map(|(clock, value, strict)| Op::UpperBound { clock, value, strict }),
        (clock_idx(), 0i64..50, any::<bool>())
            .prop_map(|(clock, value, strict)| Op::LowerBound { clock, value, strict }),
        (clock_idx(), clock_idx(), -30i64..30, any::<bool>())
            .prop_map(|(a, b, value, strict)| Op::Diff { a, b, value, strict }),
        (clock_idx(), 0i64..20).prop_map(|(clock, value)| Op::Reset { clock, value }),
        clock_idx().prop_map(|clock| Op::Free { clock }),
    ]
}

fn apply(z: &mut Dbm, op: &Op) {
    match *op {
        Op::Up => {
            z.up();
        }
        Op::UpperBound { clock, value, strict } => {
            z.constrain(Clock(clock), Clock::REF, Bound::new(value, strict));
        }
        Op::LowerBound { clock, value, strict } => {
            z.constrain(Clock::REF, Clock(clock), Bound::new(-value, strict));
        }
        Op::Diff { a, b, value, strict } => {
            if a != b {
                z.constrain(Clock(a), Clock(b), Bound::new(value, strict));
            }
        }
        Op::Reset { clock, value } => {
            z.reset(Clock(clock), value);
        }
        Op::Free { clock } => {
            z.free(Clock(clock));
        }
    }
}

fn random_zone() -> impl Strategy<Value = Dbm> {
    proptest::collection::vec(op_strategy(), 0..12).prop_map(|ops| {
        let mut z = Dbm::zero(NUM_CLOCKS);
        for op in &ops {
            apply(&mut z, op);
        }
        z
    })
}

/// An activity mask over the reference clock + NUM_CLOCKS real clocks.
fn active_mask() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), NUM_CLOCKS + 1)
}

fn is_canonical(z: &Dbm) -> bool {
    let mut closed = z.clone();
    closed.close();
    closed.relation(z) == Relation::Equal
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// All three projection ops keep the matrix canonical (re-closing is a
    /// no-op afterwards).
    #[test]
    fn projection_ops_preserve_canonical_form(z in random_zone(),
                                              clock in clock_idx(),
                                              mask in active_mask()) {
        let mut r = z.clone();
        r.reset_to_canonical(Clock(clock));
        prop_assert!(is_canonical(&r));
        let mut f = z.clone();
        f.free_clock(Clock(clock));
        prop_assert!(is_canonical(&f));
        let mut m = z.clone();
        m.restrict_to_active(&mask);
        prop_assert!(is_canonical(&m));
    }

    /// The ops are idempotent: applying them twice equals applying them once.
    #[test]
    fn projection_ops_are_idempotent(z in random_zone(),
                                     clock in clock_idx(),
                                     mask in active_mask()) {
        let mut once = z.clone();
        once.reset_to_canonical(Clock(clock));
        let mut twice = once.clone();
        twice.reset_to_canonical(Clock(clock));
        prop_assert_eq!(&once, &twice);

        let mut fonce = z.clone();
        fonce.free_clock(Clock(clock));
        let mut ftwice = fonce.clone();
        ftwice.free_clock(Clock(clock));
        prop_assert_eq!(&fonce, &ftwice);

        let mut monce = z.clone();
        monce.restrict_to_active(&mask);
        let mut mtwice = monce.clone();
        mtwice.restrict_to_active(&mask);
        prop_assert_eq!(&monce, &mtwice);
    }

    /// Monotonicity w.r.t. zone inclusion: if `a ⊆ b` then `op(a) ⊆ op(b)`.
    /// This is what makes the reduction compatible with the passed list's
    /// inclusion subsumption.
    #[test]
    fn projection_ops_are_monotone(a in random_zone(), b in random_zone(),
                                   clock in clock_idx(), mask in active_mask()) {
        if b.includes(&a) {
            let (mut ra, mut rb) = (a.clone(), b.clone());
            ra.reset_to_canonical(Clock(clock));
            rb.reset_to_canonical(Clock(clock));
            prop_assert!(rb.includes(&ra));

            let (mut fa, mut fb) = (a.clone(), b.clone());
            fa.free_clock(Clock(clock));
            fb.free_clock(Clock(clock));
            prop_assert!(fb.includes(&fa));

            let (mut ma, mut mb) = (a.clone(), b.clone());
            ma.restrict_to_active(&mask);
            mb.restrict_to_active(&mask);
            prop_assert!(mb.includes(&ma));
        }
    }

    /// `restrict_to_active` is exactly the sequential canonicalization of
    /// every dead clock, and it reports their number.
    #[test]
    fn restrict_matches_per_clock_resets(z in random_zone(), mask in active_mask()) {
        let mut restricted = z.clone();
        let eliminated = restricted.restrict_to_active(&mask);
        let mut manual = z.clone();
        let mut expected = 0;
        for (i, active) in mask.iter().enumerate().take(NUM_CLOCKS + 1).skip(1) {
            if !active {
                manual.reset_to_canonical(Clock(i as u32));
                expected += 1;
            }
        }
        prop_assert_eq!(&restricted, &manual);
        if z.is_empty() {
            prop_assert_eq!(eliminated, 0);
        } else {
            prop_assert_eq!(eliminated, expected);
        }
    }

    /// `reset_to_canonical` equals projecting the clock away and pinning it:
    /// `free_clock(x); x ≤ 0` — the two formulations of "the dead value does
    /// not matter".
    #[test]
    fn reset_to_canonical_is_free_then_pin(z in random_zone(), clock in clock_idx()) {
        let mut direct = z.clone();
        direct.reset_to_canonical(Clock(clock));
        let mut via_free = z.clone();
        via_free.free_clock(Clock(clock));
        via_free.constrain(Clock(clock), Clock::REF, Bound::weak(0));
        prop_assert_eq!(direct.relation(&via_free), Relation::Equal);
    }

    /// `subtract` computes the exact set difference (up to the integer grid
    /// probed here): a point lies in some piece iff it lies in the minuend
    /// but not the subtrahend.
    #[test]
    fn subtract_is_set_difference(a in random_zone(), b in random_zone(),
                                  v in proptest::collection::vec(0i64..60, NUM_CLOCKS)) {
        let pieces = a.subtract(&b);
        let mut point = v.clone();
        point.insert(0, 0);
        let in_pieces = pieces.iter().any(|p| p.contains_point(&point));
        let expected = a.contains_point(&point) && !b.contains_point(&point);
        prop_assert_eq!(in_pieces, expected);
        // Every piece stays canonical.
        for p in &pieces {
            let mut closed = p.clone();
            closed.close();
            prop_assert_eq!(closed.relation(p), Relation::Equal);
        }
    }

    /// `try_merge` is exact: when it succeeds the hull contains precisely the
    /// union of the operands; when it fails the hull genuinely adds points
    /// (soundness of the convexity check is what the checker's exact zone
    /// merging relies on).
    #[test]
    fn try_merge_is_exact_union(a in random_zone(), b in random_zone(),
                                v in proptest::collection::vec(0i64..60, NUM_CLOCKS)) {
        let mut point = v.clone();
        point.insert(0, 0);
        let hull = a.convex_hull(&b);
        prop_assert!(hull.includes(&a) && hull.includes(&b));
        match a.try_merge(&b) {
            Some(merged) => {
                prop_assert_eq!(merged.relation(&hull), Relation::Equal);
                prop_assert_eq!(
                    merged.contains_point(&point),
                    a.contains_point(&point) || b.contains_point(&point)
                );
            }
            None => {
                // The union is not convex: the hull strictly exceeds it, so
                // the merged zone would have over-approximated.  (No point
                // witness is guaranteed to lie on the integer grid, so only
                // the implication hull ⊋ a ∪ b is checked via subtraction.)
                let beyond_a = hull.subtract(&a);
                prop_assert!(beyond_a.iter().any(|p| !b.includes(p)));
            }
        }
    }

    /// Canonicalizing a dead clock never changes emptiness, and the result
    /// depends only on the projection onto the other clocks: every member
    /// valuation has the dead clock at 0, and any member of the original
    /// zone stays a member after zeroing that coordinate.
    #[test]
    fn reset_to_canonical_projects(z in random_zone(), clock in clock_idx(),
                                   v in proptest::collection::vec(0i64..60, NUM_CLOCKS)) {
        let mut r = z.clone();
        r.reset_to_canonical(Clock(clock));
        prop_assert_eq!(r.is_empty(), z.is_empty());
        let mut point = v.clone();
        point.insert(0, 0);
        if r.contains_point(&point) {
            prop_assert_eq!(point[clock as usize], 0);
        }
        if z.contains_point(&point) {
            let mut zeroed = point.clone();
            zeroed[clock as usize] = 0;
            prop_assert!(r.contains_point(&zeroed));
        }
    }
}
