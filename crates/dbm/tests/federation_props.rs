//! Property-based tests for the federation-coverage machinery behind the
//! checker's federation state store (`Federation::{includes_zone, coverage_of,
//! subtract_zone, reduce, absorb_convex}`).
//!
//! Coverage must be *exact*: a point of the candidate zone is in the union of
//! the stored zones iff the candidate is accepted as covered — an unsound
//! accept would silently drop reachable states from the exploration, an
//! unsound reject merely stores too much.  `reduce` and `absorb_convex`
//! compact the stored representation and must preserve the denoted set.

use proptest::prelude::*;
use tempo_dbm::{Bound, Clock, Dbm, Federation, ZoneCoverage};

const NUM_CLOCKS: usize = 2;

/// One symbolic operation applied while generating a random zone (same
/// op-sequence generator as `proptests.rs`, with smaller constants so that
/// federations of a few zones overlap often enough to exercise the union
/// coverage path).
#[derive(Clone, Debug)]
enum Op {
    Up,
    UpperBound { clock: u32, value: i64, strict: bool },
    LowerBound { clock: u32, value: i64, strict: bool },
    Diff { a: u32, b: u32, value: i64, strict: bool },
    Reset { clock: u32, value: i64 },
    Free { clock: u32 },
}

fn clock_idx() -> impl Strategy<Value = u32> {
    1..=(NUM_CLOCKS as u32)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Up),
        (clock_idx(), 0i64..12, any::<bool>())
            .prop_map(|(clock, value, strict)| Op::UpperBound { clock, value, strict }),
        (clock_idx(), 0i64..12, any::<bool>())
            .prop_map(|(clock, value, strict)| Op::LowerBound { clock, value, strict }),
        (clock_idx(), clock_idx(), -8i64..8, any::<bool>())
            .prop_map(|(a, b, value, strict)| Op::Diff { a, b, value, strict }),
        (clock_idx(), 0i64..8).prop_map(|(clock, value)| Op::Reset { clock, value }),
        clock_idx().prop_map(|clock| Op::Free { clock }),
    ]
}

fn apply(z: &mut Dbm, op: &Op) {
    match *op {
        Op::Up => {
            z.up();
        }
        Op::UpperBound { clock, value, strict } => {
            z.constrain(Clock(clock), Clock::REF, Bound::new(value, strict));
        }
        Op::LowerBound { clock, value, strict } => {
            z.constrain(Clock::REF, Clock(clock), Bound::new(-value, strict));
        }
        Op::Diff { a, b, value, strict } => {
            if a != b {
                z.constrain(Clock(a), Clock(b), Bound::new(value, strict));
            }
        }
        Op::Reset { clock, value } => {
            z.reset(Clock(clock), value);
        }
        Op::Free { clock } => {
            z.free(Clock(clock));
        }
    }
}

fn random_zone() -> impl Strategy<Value = Dbm> {
    proptest::collection::vec(op_strategy(), 0..10).prop_map(|ops| {
        let mut z = Dbm::zero(NUM_CLOCKS);
        for op in &ops {
            apply(&mut z, op);
        }
        z
    })
}

fn random_federation() -> impl Strategy<Value = Federation> {
    proptest::collection::vec(random_zone(), 0..5).prop_map(|zones| {
        let mut f = Federation::empty(NUM_CLOCKS);
        for z in zones {
            f.add(z);
        }
        f
    })
}

fn valuation() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(0i64..15, NUM_CLOCKS).prop_map(|mut v| {
        v.insert(0, 0);
        v
    })
}

/// The candidate minus every member, computed with a plain `Dbm::subtract`
/// fold (no fast paths) — the independent reference for the union-coverage
/// verdict.  `Dbm::subtract` itself is proven to be exact set difference by
/// `reduction_props.rs`.  The second component is `true` when the piece
/// count stayed within the implementation's internal budget (512): only then
/// is `coverage_of` specified to be exact — beyond it, it may conservatively
/// answer `NotCovered`.
fn reference_remainder(zone: &Dbm, f: &Federation) -> (Vec<Dbm>, bool) {
    if zone.is_empty() {
        return (Vec::new(), true);
    }
    let mut within_budget = true;
    let mut remainder = vec![zone.clone()];
    for member in f.iter() {
        remainder = remainder.iter().flat_map(|p| p.subtract(member)).collect();
        if remainder.len() > 512 {
            within_budget = false;
        }
    }
    (remainder, within_budget)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Coverage is exact: `includes_zone` accepts iff subtracting every
    /// member from the candidate leaves nothing (as long as the subtraction
    /// stays within the documented piece budget — beyond it, only rejection
    /// is allowed), and an accepted candidate never contains a point outside
    /// the union.
    #[test]
    fn includes_zone_is_exact_union_coverage(f in random_federation(), z in random_zone(),
                                             v in valuation()) {
        let accepted = f.includes_zone(&z);
        let (remainder, within_budget) = reference_remainder(&z, &f);
        if within_budget {
            prop_assert_eq!(accepted, remainder.is_empty());
        } else if accepted {
            // Acceptance must be sound even when the budget was exceeded.
            prop_assert!(remainder.is_empty());
        }
        if accepted && z.contains_point(&v) {
            prop_assert!(f.contains_point(&v), "accepted candidate leaks point {:?}", v);
        }
    }

    /// The three-way classification is consistent: `Member` iff some single
    /// member includes the candidate, `Union` only when the union covers it
    /// but no single member does.
    #[test]
    fn coverage_of_classification_is_consistent(f in random_federation(), z in random_zone()) {
        let single = !z.is_empty() && f.iter().any(|m| m.includes(&z));
        match f.coverage_of(&z) {
            ZoneCoverage::Member => prop_assert!(z.is_empty() || single),
            ZoneCoverage::Union => {
                prop_assert!(!single);
                prop_assert!(reference_remainder(&z, &f).0.is_empty());
            }
            ZoneCoverage::NotCovered => {
                prop_assert!(!single);
                let (remainder, within_budget) = reference_remainder(&z, &f);
                if within_budget {
                    prop_assert!(!remainder.is_empty());
                }
            }
        }
    }

    /// `subtract_zone` is exact set difference at every sampled point.
    #[test]
    fn subtract_zone_is_set_difference(f in random_federation(), z in random_zone(),
                                       v in valuation()) {
        let d = f.subtract_zone(&z);
        prop_assert_eq!(
            d.contains_point(&v),
            f.contains_point(&v) && !z.contains_point(&v)
        );
    }

    /// `reduce` preserves the denoted set, never grows the federation, and a
    /// second application finds nothing more to drop.
    #[test]
    fn reduce_preserves_the_denoted_set(f in random_federation(), v in valuation()) {
        let mut r = f.clone();
        let dropped = r.reduce();
        prop_assert_eq!(r.size() + dropped, f.size());
        prop_assert_eq!(r.contains_point(&v), f.contains_point(&v));
        // And every remaining member is genuinely needed.
        let mut again = r.clone();
        prop_assert_eq!(again.reduce(), 0);
    }

    /// `absorb_convex` preserves the denoted set of federation ∪ candidate.
    #[test]
    fn absorb_convex_preserves_the_union(f in random_federation(), z in random_zone(),
                                         v in valuation()) {
        let before = f.contains_point(&v) || z.contains_point(&v);
        let mut g = f.clone();
        let mut zone = z.clone();
        let absorbed = g.absorb_convex(&mut zone, 16);
        prop_assert_eq!(g.size() + absorbed, f.size());
        let after = g.contains_point(&v) || zone.contains_point(&v);
        prop_assert_eq!(after, before);
        // The grown zone still includes the original candidate.
        if !z.is_empty() {
            prop_assert!(zone.includes(&z));
        }
    }
}
