//! Differential test for the incremental re-canonicalization paths: the same
//! operation sequences executed with incremental close enabled and disabled
//! must produce bit-identical matrices (the canonical form of a zone is
//! unique), and the extrapolations — where the incremental widening is a
//! deliberately independent abstraction — must stay extensive, canonical and
//! idempotent in both modes.
//!
//! The toggle is process-global, so everything lives in one `#[test]`
//! function; this file is its own test binary and owns the process.

use tempo_dbm::{set_incremental_close, Bound, Clock, Dbm, Relation};

const NUM_CLOCKS: usize = 4;

/// Deterministic xorshift generator — no rand crate in the offline build.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn clock(&mut self) -> Clock {
        Clock(1 + self.below(NUM_CLOCKS as u64) as u32)
    }

    fn bound(&mut self, lo: i64, hi: i64) -> Bound {
        let m = lo + self.below((hi - lo) as u64) as i64;
        Bound::new(m, self.below(2) == 0)
    }
}

/// One random zone-shaping step.  `other` feeds the binary operations so both
/// modes see the same right-hand sides.
fn step(z: &mut Dbm, other: &Dbm, rng: &mut Rng) {
    match rng.below(8) {
        0 => {
            z.up();
        }
        1 => {
            let c = rng.clock();
            let b = rng.bound(0, 50);
            z.constrain(c, Clock::REF, b);
        }
        2 => {
            let c = rng.clock();
            let b = rng.bound(-40, 0);
            z.constrain(Clock::REF, c, b);
        }
        3 => {
            let (a, b) = (rng.clock(), rng.clock());
            if a != b {
                let bd = rng.bound(-25, 25);
                z.constrain(a, b, bd);
            }
        }
        4 => {
            let c = rng.clock();
            z.reset(c, rng.below(20) as i64);
        }
        5 => {
            let c = rng.clock();
            z.free(c);
        }
        6 => {
            let c = rng.clock();
            let delta = rng.below(21) as i64 - 10;
            z.shift(c, delta);
        }
        _ => {
            z.intersect(other);
        }
    }
}

/// Replays `steps` operations from `seed` in the current mode and returns the
/// intermediate fingerprints plus the final zone.
fn replay(seed: u64, steps: usize) -> (Vec<u64>, Dbm) {
    let mut rng = Rng(seed);
    let mut z = Dbm::zero(NUM_CLOCKS);
    z.up();
    // A fixed companion zone for the intersection steps, derived from the
    // same seed so both modes agree on it.
    let mut other = Dbm::zero(NUM_CLOCKS);
    other.up();
    other.constrain(Clock(1), Clock::REF, rng.bound(5, 60));
    other.constrain(Clock::REF, Clock(2), rng.bound(-30, 0));
    let mut trace = Vec::with_capacity(steps);
    for _ in 0..steps {
        if z.is_empty() {
            z = Dbm::zero(NUM_CLOCKS);
            z.up();
        }
        step(&mut z, &other, &mut rng);
        trace.push(z.fingerprint());
    }
    (trace, z)
}

fn assert_bit_identical(a: &Dbm, b: &Dbm, seed: u64) {
    assert_eq!(a.is_empty(), b.is_empty(), "emptiness diverges (seed {seed})");
    if a.is_empty() {
        return;
    }
    for i in 0..=NUM_CLOCKS as u32 {
        for j in 0..=NUM_CLOCKS as u32 {
            assert_eq!(
                a.get(Clock(i), Clock(j)),
                b.get(Clock(i), Clock(j)),
                "entry ({i}, {j}) diverges (seed {seed})"
            );
        }
    }
}

#[test]
fn incremental_and_full_close_agree() {
    for seed in 1..=64u64 {
        // Constrain / shift / intersect re-canonicalize to the *unique*
        // canonical form, so the two modes must agree bit-for-bit on every
        // intermediate matrix.
        set_incremental_close(true);
        let (fast_trace, fast) = replay(seed, 40);
        set_incremental_close(false);
        let (slow_trace, slow) = replay(seed, 40);
        set_incremental_close(true);
        assert_eq!(fast_trace, slow_trace, "trace diverges (seed {seed})");
        assert_bit_identical(&fast, &slow, seed);

        // Extrapolation: the per-clock widening is its own (equally sound)
        // abstraction and need not match the batch result bit-for-bit; both
        // modes must be extensive and canonical, and both must contain the
        // un-extrapolated zone.
        let bounds: Vec<i64> = std::iter::once(0)
            .chain((1..=NUM_CLOCKS as u64).map(|i| ((seed * i) % 30) as i64))
            .collect();
        for enabled in [true, false] {
            set_incremental_close(enabled);
            let mut e = fast.clone();
            e.extrapolate_lu(&bounds, &bounds);
            assert!(e.includes(&fast), "not extensive (seed {seed}, {enabled})");
            // Canonicity is a property of the representation, not the zone:
            // a full re-close must not tighten any entry.
            let mut reclosed = e.clone();
            reclosed.close();
            assert_bit_identical(&reclosed, &e, seed);
            // Both modes must yield a fixpoint of the widening (the
            // incremental path verifies this and falls back to a batch
            // widen + full close when the per-clock sweep alone is not one),
            // so a second application must change nothing.  Termination of
            // the explorer depends on this: fixpoints have every finite
            // entry bounded by the constant tables, so only finitely many
            // extrapolated zones exist per location.
            let once = e.clone();
            e.extrapolate_lu(&bounds, &bounds);
            assert_eq!(
                e.relation(&once),
                Relation::Equal,
                "not idempotent (seed {seed}, incremental {enabled})"
            );
        }
        set_incremental_close(true);
    }
}
