//! The [`Bound`] type: an element of the difference bound matrix.
//!
//! A bound is either infinity (`∞`, no constraint) or a pair `(m, ≺)` with
//! `m ∈ ℤ` and `≺ ∈ {<, ≤}`, meaning `x_i − x_j ≺ m`.  Bounds are totally
//! ordered by constraint tightness: `(m, <) < (m, ≤) < (m+1, <) < … < ∞`.
//!
//! Internally a bound is encoded in a single `i64` as `2·m + weak_bit`, the
//! same trick used by the UPPAAL DBM library, so that comparison of encoded
//! values coincides with the tightness order and addition is two shifts and an
//! and.

use std::fmt;
use std::ops::Add;

/// A single difference bound: `∞` or `(constant, strictness)`.
///
/// The natural order of `Bound` is the *tightness* order used throughout DBM
/// algorithms: a smaller bound is a stronger constraint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Bound(i64);

/// Raw encoding of infinity.  Chosen so that `INF_RAW + INF_RAW` does not
/// overflow when computed with saturating arithmetic.
const INF_RAW: i64 = i64::MAX;

/// Largest representable finite constant.  Constants produced by the
/// architecture front-end are far below this.
pub(crate) const MAX_CONST: i64 = (i64::MAX >> 2) - 1;

/// Raw encoding of the loosest finite bound, `(MAX_CONST, ≤)`.
const MAX_FINITE_RAW: i64 = 2 * MAX_CONST + 1;

/// Raw encoding of the tightest representable bound, `(−MAX_CONST, <)`.
const MIN_FINITE_RAW: i64 = -2 * MAX_CONST;

impl Bound {
    /// The unconstrained bound `∞`.
    pub const INFINITY: Bound = Bound(INF_RAW);

    /// The bound `(0, ≤)`, i.e. `x_i − x_j ≤ 0`.
    pub const LE_ZERO: Bound = Bound(1);

    /// The bound `(0, <)`, i.e. `x_i − x_j < 0`.
    pub const LT_ZERO: Bound = Bound(0);

    /// Creates the non-strict (weak) bound `(m, ≤)`.
    ///
    /// # Panics
    /// Panics if `m` is outside the representable constant range.
    #[inline]
    pub fn weak(m: i64) -> Bound {
        assert!(
            (-MAX_CONST..=MAX_CONST).contains(&m),
            "DBM constant {m} out of range"
        );
        Bound(2 * m + 1)
    }

    /// Creates the strict bound `(m, <)`.
    ///
    /// # Panics
    /// Panics if `m` is outside the representable constant range.
    #[inline]
    pub fn strict(m: i64) -> Bound {
        assert!(
            (-MAX_CONST..=MAX_CONST).contains(&m),
            "DBM constant {m} out of range"
        );
        Bound(2 * m)
    }

    /// Creates a bound from a constant and a strictness flag.
    #[inline]
    pub fn new(m: i64, is_strict: bool) -> Bound {
        if is_strict {
            Bound::strict(m)
        } else {
            Bound::weak(m)
        }
    }

    /// Returns `true` for the `∞` bound.
    #[inline]
    pub fn is_infinity(self) -> bool {
        self.0 == INF_RAW
    }

    /// Returns `true` for a strict (`<`) bound.  `∞` is not strict.
    #[inline]
    pub fn is_strict(self) -> bool {
        !self.is_infinity() && self.0 & 1 == 0
    }

    /// The integer constant of a finite bound.
    ///
    /// # Panics
    /// Panics when called on `∞`.
    #[inline]
    pub fn constant(self) -> i64 {
        assert!(!self.is_infinity(), "infinity has no constant");
        self.0 >> 1
    }

    /// The constant of a finite bound, or `None` for `∞`.
    #[inline]
    pub fn finite_constant(self) -> Option<i64> {
        if self.is_infinity() {
            None
        } else {
            Some(self.0 >> 1)
        }
    }

    /// Bound addition: the tightest bound implied by chaining
    /// `x−y ≺₁ m₁` and `y−z ≺₂ m₂`.  `∞` is absorbing, constants add, and the
    /// result is weak only if both operands are weak.
    ///
    /// A sum looser than `(MAX_CONST, ≤)` saturates to `∞`: shortest-path
    /// relaxation only ever takes the *minimum* of a sum against an existing
    /// entry, so replacing an unrepresentably loose bound by `∞` never changes
    /// which entry wins.  A sum below `(−MAX_CONST, <)` has no such safe
    /// substitute (clamping would silently *loosen* a constraint), so it
    /// panics instead of wrapping.
    ///
    /// # Panics
    /// Panics when the sum is tighter than the encodable range.
    #[inline]
    #[allow(clippy::should_implement_trait)] // deliberate: chaining, not arithmetic
    pub fn add(self, other: Bound) -> Bound {
        if self.is_infinity() || other.is_infinity() {
            return Bound::INFINITY;
        }
        // (2a + wa) + (2b + wb) - adjust so the weak bit is the AND.  Both
        // operands are within the finite encoding, so the i64 sum cannot wrap.
        let raw = (self.0 & !1) + (other.0 & !1) + (self.0 & other.0 & 1);
        if raw > MAX_FINITE_RAW {
            return Bound::INFINITY;
        }
        assert!(raw >= MIN_FINITE_RAW, "DBM bound addition underflow");
        Bound(raw)
    }

    /// The negation used in emptiness/consistency checks: the bound `b'` such
    /// that `x−y ≺ m` and `y−x ≺' m'` are jointly unsatisfiable iff
    /// `b.add(b') < (0, ≤)`.  Concretely `¬(m, ≤) = (−m, <)` and
    /// `¬(m, <) = (−m, ≤)`.
    ///
    /// # Panics
    /// Panics when called on `∞`.
    #[inline]
    pub fn negated(self) -> Bound {
        assert!(!self.is_infinity(), "cannot negate infinity");
        Bound::new(-self.constant(), !self.is_strict())
    }

    /// Minimum (tighter) of two bounds.
    #[inline]
    pub fn min(self, other: Bound) -> Bound {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Maximum (looser) of two bounds.
    #[inline]
    pub fn max(self, other: Bound) -> Bound {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Raw encoded value (for hashing / debugging).
    #[inline]
    pub fn raw(self) -> i64 {
        self.0
    }

    /// Rebuilds a bound from its raw encoding.  Only values produced by
    /// [`Bound::raw`] are meaningful.
    #[inline]
    pub fn from_raw(raw: i64) -> Bound {
        Bound(raw)
    }

    /// `true` iff a valuation difference equal to `d` satisfies this bound.
    #[inline]
    pub fn admits(self, d: i64) -> bool {
        if self.is_infinity() {
            return true;
        }
        if self.is_strict() {
            d < self.constant()
        } else {
            d <= self.constant()
        }
    }
}

impl Add for Bound {
    type Output = Bound;
    #[inline]
    fn add(self, rhs: Bound) -> Bound {
        Bound::add(self, rhs)
    }
}

impl Default for Bound {
    /// The default bound is `∞` (no constraint).
    fn default() -> Self {
        Bound::INFINITY
    }
}

impl fmt::Debug for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinity() {
            write!(f, "<∞")
        } else if self.is_strict() {
            write!(f, "<{}", self.constant())
        } else {
            write!(f, "≤{}", self.constant())
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_tightness() {
        assert!(Bound::strict(3) < Bound::weak(3));
        assert!(Bound::weak(3) < Bound::strict(4));
        assert!(Bound::weak(4) < Bound::INFINITY);
        assert!(Bound::strict(-2) < Bound::weak(0));
        assert_eq!(Bound::LT_ZERO, Bound::strict(0));
        assert_eq!(Bound::LE_ZERO, Bound::weak(0));
    }

    #[test]
    fn addition_tracks_strictness() {
        assert_eq!(Bound::weak(2) + Bound::weak(3), Bound::weak(5));
        assert_eq!(Bound::weak(2) + Bound::strict(3), Bound::strict(5));
        assert_eq!(Bound::strict(2) + Bound::strict(3), Bound::strict(5));
        assert_eq!(Bound::weak(-2) + Bound::weak(2), Bound::weak(0));
    }

    #[test]
    fn addition_absorbs_infinity() {
        assert_eq!(Bound::INFINITY + Bound::weak(7), Bound::INFINITY);
        assert_eq!(Bound::strict(-100) + Bound::INFINITY, Bound::INFINITY);
        assert_eq!(Bound::INFINITY + Bound::INFINITY, Bound::INFINITY);
    }

    #[test]
    fn negation_roundtrip() {
        for b in [Bound::weak(5), Bound::strict(5), Bound::weak(-3), Bound::LE_ZERO] {
            assert_eq!(b.negated().negated(), b);
        }
        // x - y <= 5 and y - x < -5 are inconsistent (sum < 0)
        assert!(Bound::weak(5) + Bound::weak(5).negated() < Bound::LE_ZERO);
        // x - y <= 5 and y - x <= -5 are consistent (x - y = 5)
        assert!(Bound::weak(5) + Bound::weak(-5) >= Bound::LE_ZERO);
    }

    #[test]
    fn constants_and_flags() {
        assert_eq!(Bound::weak(42).constant(), 42);
        assert!(!Bound::weak(42).is_strict());
        assert_eq!(Bound::strict(-42).constant(), -42);
        assert!(Bound::strict(-42).is_strict());
        assert!(Bound::INFINITY.is_infinity());
        assert_eq!(Bound::weak(7).finite_constant(), Some(7));
        assert_eq!(Bound::INFINITY.finite_constant(), None);
    }

    #[test]
    fn admits_checks_inequality_kind() {
        assert!(Bound::weak(5).admits(5));
        assert!(!Bound::strict(5).admits(5));
        assert!(Bound::strict(5).admits(4));
        assert!(Bound::INFINITY.admits(i64::MAX / 4));
        assert!(!Bound::weak(-1).admits(0));
    }

    #[test]
    fn min_max() {
        assert_eq!(Bound::weak(3).min(Bound::strict(3)), Bound::strict(3));
        assert_eq!(Bound::weak(3).max(Bound::INFINITY), Bound::INFINITY);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_constant() {
        let _ = Bound::weak(i64::MAX / 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_negative_constant() {
        let _ = Bound::strict(-(MAX_CONST + 1));
    }

    #[test]
    fn extreme_constants_round_trip_and_order() {
        // The four corners of the encoding are representable, round-trip
        // through constant()/is_strict()/raw(), and sit in the tightness
        // order exactly where the lexicographic (m, ≺) order puts them.
        let corners = [
            Bound::strict(-MAX_CONST),
            Bound::weak(-MAX_CONST),
            Bound::strict(MAX_CONST),
            Bound::weak(MAX_CONST),
        ];
        for b in corners {
            assert_eq!(Bound::from_raw(b.raw()), b);
            assert_eq!(Bound::new(b.constant(), b.is_strict()), b);
        }
        assert!(corners[0] < corners[1]);
        assert!(corners[1] < corners[2]);
        assert!(corners[2] < corners[3]);
        assert!(corners[3] < Bound::INFINITY);
    }

    #[test]
    fn addition_saturates_to_infinity_past_max_const() {
        // Looser-than-encodable sums become ∞ — sound, because a chained
        // path this loose can never beat an existing entry in a min().
        let loose = Bound::weak(MAX_CONST) + Bound::weak(1);
        assert!(loose.is_infinity());
        assert_eq!(Bound::weak(MAX_CONST) + Bound::weak(MAX_CONST), Bound::INFINITY);
        // The largest non-saturating sum is exact.
        assert_eq!(Bound::weak(MAX_CONST) + Bound::weak(0), Bound::weak(MAX_CONST));
        assert_eq!(
            Bound::weak(MAX_CONST) + Bound::strict(0),
            Bound::strict(MAX_CONST)
        );
        // Saturation only looks at the sum, not the operands.
        assert_eq!(
            Bound::weak(MAX_CONST) + Bound::weak(-MAX_CONST),
            Bound::weak(0)
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn addition_panics_on_underflow() {
        // Tighter-than-encodable sums have no sound substitute.
        let _ = Bound::strict(-MAX_CONST) + Bound::strict(-MAX_CONST);
    }

    #[test]
    #[should_panic(expected = "no constant")]
    fn infinity_has_no_constant() {
        let _ = Bound::INFINITY.constant();
    }
}
