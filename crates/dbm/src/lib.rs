//! # tempo-dbm — Difference Bound Matrices for timed-automata analysis
//!
//! This crate implements the symbolic clock-zone representation used by
//! UPPAAL-style model checkers: *difference bound matrices* (DBMs) over a set
//! of clocks `x_1 … x_n` plus the reference clock `x_0 ≡ 0`.  A DBM `D`
//! represents the convex set of clock valuations
//!
//! ```text
//! [[D]] = { v : ℝ≥0ⁿ | ∀ i,j. v(x_i) − v(x_j) ≺_{ij} D[i][j] }
//! ```
//!
//! where every entry is a [`Bound`]: either `∞` or a pair of an integer
//! constant and a strictness flag (`<` or `≤`).
//!
//! The operations provided are exactly those needed by forward symbolic
//! reachability of timed automata (Bengtsson & Yi, *Timed Automata: Semantics,
//! Algorithms and Tools*):
//!
//! * [`Dbm::close`] — full canonicalization (all-pairs shortest paths) and
//!   [`Dbm::close1`] — its O(n²) incremental form after a single tightened
//!   entry (see the [`matrix`](Dbm) module docs for the canonical-form
//!   invariant and when the full close is still required),
//! * [`Dbm::up`] — delay (future) operator,
//! * [`Dbm::down`] — past operator,
//! * [`Dbm::constrain`] — intersection with a single difference constraint,
//! * [`Dbm::reset`] / [`Dbm::free`] / [`Dbm::copy_clock`] / [`Dbm::shift`] —
//!   clock updates,
//! * [`Dbm::relation`] / [`Dbm::includes`] — zone inclusion,
//! * [`Dbm::extrapolate_max_bounds`] / [`Dbm::extrapolate_lu`] — finiteness
//!   abstractions,
//! * [`Federation`] — finite unions of zones.
//!
//! All bounds are kept in `i64`, which is ample for the nanosecond-resolution
//! model-time units produced by the architecture front-end.
//!
//! ## Example
//!
//! ```
//! use tempo_dbm::{Dbm, Clock, Bound};
//!
//! // Two clocks x (=1) and y (=2), starting at the origin.
//! let mut z = Dbm::zero(2);
//! z.up();                                   // let time pass
//! z.constrain(Clock(1), Clock::REF, Bound::weak(5));   // x ≤ 5
//! z.constrain(Clock::REF, Clock(2), Bound::weak(-2));  // y ≥ 2
//! assert!(!z.is_empty());
//! assert_eq!(z.sup(Clock(1)), Bound::weak(5));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bound;
mod clock;
mod constraint;
mod matrix;
mod federation;

pub use bound::Bound;
pub use clock::{Clock, ClockSet};
pub use constraint::{Constraint, RelOp};
pub use matrix::{incremental_close_enabled, set_incremental_close, Dbm, Relation};
pub use federation::{Federation, ZoneCoverage};
