//! The [`Dbm`] type and its zone operations.
//!
//! # The canonical-form invariant
//!
//! Every public operation keeps the matrix *canonical*: each entry `d[i][j]`
//! is the tightest bound on `x_i − x_j` implied by the whole constraint
//! system, i.e. the matrix is closed under shortest paths
//! (`d[i][j] ≤ d[i][k] + d[k][j]` for all `k`).  Relation, inclusion, hashing
//! and emptiness checks all rely on this invariant, which is why it is
//! restored eagerly after every mutation rather than lazily before queries.
//!
//! Re-canonicalization is *incremental* wherever the shape of the mutation
//! allows it:
//!
//! * tightening a single entry `(x, y)` — [`Dbm::constrain`], the facet
//!   splits inside subtraction, the per-entry path of [`Dbm::intersect`] and
//!   the clamp at the end of [`Dbm::shift`] — closes with one O(n²)
//!   propagation through the new edge ([`Dbm::close1`]);
//! * loosening a single clock's row and/or column (the extrapolation
//!   widenings) re-tightens just the loosened side(s) through single
//!   intermediates, O(n²) per widened clock with no interior pivot;
//! * operations that map canonical matrices to canonical matrices
//!   ([`Dbm::up`], [`Dbm::down`], [`Dbm::free`], [`Dbm::reset`],
//!   [`Dbm::copy_clock`], [`Dbm::convex_hull`]) need no re-closure at all.
//!
//! The full O(n³) Floyd–Warshall [`Dbm::close`] is still required after a
//! sequence of [`Dbm::set_raw`] writes (no structure to exploit), after an
//! intersection that tightens many entries at once (per-entry propagation
//! would exceed n·n² work), when a constant table constrains the
//! reference clock (the per-clock extrapolation split assumes it does not),
//! and when the per-clock extrapolation sweep fails its post-hoc fixpoint
//! check (re-closing a widened clock re-derived an entry of an earlier clock
//! above its cap — the batch widen + close fallback restores the fixpoint
//! the explorer's termination argument needs).  The
//! incremental paths can be disabled globally with
//! [`set_incremental_close`][crate::set_incremental_close] — the differential
//! harnesses use this to prove both modes produce identical verdicts.

use crate::{Bound, Clock, Constraint};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};

/// Global switch for the incremental re-canonicalization paths; `true` by
/// default.  See [`set_incremental_close`].
static INCREMENTAL_CLOSE: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables incremental re-canonicalization.
///
/// With `false`, every mutating operation that needs re-closure falls back to
/// the full O(n³) Floyd–Warshall — bit-for-bit the behaviour the incremental
/// algorithms must reproduce (the canonical form of a zone is unique).  The
/// switch exists for the differential test harnesses and the criterion
/// benches; production code has no reason to turn the fast paths off.
///
/// The flag is process-global and not synchronized with in-flight operations;
/// toggle it only from tests that own the whole process or serialize access.
pub fn set_incremental_close(enabled: bool) {
    INCREMENTAL_CLOSE.store(enabled, Ordering::SeqCst);
}

/// Whether incremental re-canonicalization is enabled (see
/// [`set_incremental_close`]).
#[inline]
pub fn incremental_close_enabled() -> bool {
    INCREMENTAL_CLOSE.load(Ordering::Relaxed)
}

/// Result of comparing two zones over the same clocks, see [`Dbm::relation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// The zones contain exactly the same valuations.
    Equal,
    /// The left zone is strictly contained in the right zone.
    Subset,
    /// The left zone strictly contains the right zone.
    Superset,
    /// Neither zone contains the other.
    Incomparable,
}

/// A difference bound matrix over `num_clocks` real clocks plus the reference
/// clock.
///
/// Invariant maintained by every public operation: the matrix is *canonical*
/// (closed under shortest paths) and consistently flags emptiness, unless the
/// documentation of an operation says otherwise.  All mutating operations keep
/// clocks non-negative.
#[derive(Clone, PartialEq, Eq)]
pub struct Dbm {
    dim: usize,
    empty: bool,
    m: Vec<Bound>,
}

impl Dbm {
    /// The zone containing only the origin (all clocks equal to zero).
    pub fn zero(num_clocks: usize) -> Dbm {
        let dim = num_clocks + 1;
        Dbm {
            dim,
            empty: false,
            m: vec![Bound::LE_ZERO; dim * dim],
        }
    }

    /// The zone of all valuations with non-negative clocks.
    pub fn universe(num_clocks: usize) -> Dbm {
        let dim = num_clocks + 1;
        let mut d = Dbm {
            dim,
            empty: false,
            m: vec![Bound::INFINITY; dim * dim],
        };
        for i in 0..dim {
            *d.at_mut(i, i) = Bound::LE_ZERO;
            // x0 - xi <= 0, i.e. xi >= 0
            *d.at_mut(0, i) = Bound::LE_ZERO;
        }
        d
    }

    /// An explicitly empty zone.
    pub fn empty(num_clocks: usize) -> Dbm {
        let mut d = Dbm::zero(num_clocks);
        d.empty = true;
        d
    }

    /// Number of real clocks (dimension minus the reference clock).
    #[inline]
    pub fn num_clocks(&self) -> usize {
        self.dim - 1
    }

    /// Matrix dimension (number of clocks + 1).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> Bound {
        self.m[i * self.dim + j]
    }

    #[inline]
    fn at_mut(&mut self, i: usize, j: usize) -> &mut Bound {
        &mut self.m[i * self.dim + j]
    }

    /// The bound on `i − j` stored in the matrix.
    #[inline]
    pub fn get(&self, i: Clock, j: Clock) -> Bound {
        self.at(i.index(), j.index())
    }

    /// Sets the bound on `i − j` directly **without** restoring the canonical
    /// form; callers must invoke [`Dbm::close`] before using any query.
    pub fn set_raw(&mut self, i: Clock, j: Clock, b: Bound) {
        let (i, j) = (i.index(), j.index());
        *self.at_mut(i, j) = b;
    }

    /// `true` iff the zone contains no valuation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// Upper bound of a single clock (`x − x0`), `∞` if unbounded.
    #[inline]
    pub fn sup(&self, x: Clock) -> Bound {
        self.at(x.index(), 0)
    }

    /// Lower bound of a single clock as a pair `(value, strict)`; the clock is
    /// `≥ value` (or `> value` when strict).
    #[inline]
    pub fn inf(&self, x: Clock) -> (i64, bool) {
        let b = self.at(0, x.index());
        (-b.constant(), b.is_strict())
    }

    /// Canonicalizes the matrix with Floyd–Warshall and detects emptiness.
    ///
    /// All other operations keep the matrix canonical, so this is only needed
    /// after a sequence of [`Dbm::set_raw`] calls.
    pub fn close(&mut self) {
        if self.empty {
            return;
        }
        let n = self.dim;
        for k in 0..n {
            // Relaxing row k with pivot k is a no-op while d[k][k] ≥ (0, ≤)
            // (and the matrix is declared empty right below otherwise), so
            // row k can serve as a shared immutable source row while every
            // other row is relaxed over contiguous slices.
            let (before, rest) = self.m.split_at_mut(k * n);
            let (row_k, after) = rest.split_at_mut(n);
            let relax = |row: &mut [Bound]| {
                let dik = row[k];
                if dik.is_infinity() {
                    return;
                }
                for (d, &dkj) in row.iter_mut().zip(row_k.iter()) {
                    let via = dik + dkj;
                    if via < *d {
                        *d = via;
                    }
                }
            };
            for row in before.chunks_exact_mut(n) {
                relax(row);
            }
            for row in after.chunks_exact_mut(n) {
                relax(row);
            }
            if self.m[k * n + k] < Bound::LE_ZERO {
                self.empty = true;
                return;
            }
        }
        for i in 0..n {
            if self.at(i, i) < Bound::LE_ZERO {
                self.empty = true;
                return;
            }
            *self.at_mut(i, i) = Bound::LE_ZERO;
        }
    }

    /// Incremental canonicalization after the single entry `(x, y)` has been
    /// tightened on an otherwise canonical matrix: every new shortest path
    /// uses the tightened edge at most once, so one O(n²) propagation
    /// (`d[i][j] = min(d[i][j], d[i][x] + d[x][y] + d[y][j])`) restores the
    /// closure exactly — bound-for-bound what a full [`Dbm::close`] would
    /// compute.  Detects the zone turning empty (`d[y][x] + d[x][y] < 0`).
    ///
    /// Use after a [`Dbm::set_raw`] that *tightened* `(x, y)`; a loosened
    /// entry or several raw writes still require the full close.
    pub fn close1(&mut self, x: Clock, y: Clock) -> &mut Self {
        if self.empty {
            return self;
        }
        let (x, y) = (x.index(), y.index());
        debug_assert!(x != y && x < self.dim && y < self.dim);
        let bound = self.at(x, y);
        if bound.is_infinity() {
            return self;
        }
        if self.at(y, x) + bound < Bound::LE_ZERO {
            self.empty = true;
            return self;
        }
        self.close1_idx(x, y);
        self
    }

    /// The propagation loop of [`Dbm::close1`]; callers have already checked
    /// non-emptiness, finiteness of `(x, y)` and the negative-cycle test.
    fn close1_idx(&mut self, x: usize, y: usize) {
        let n = self.dim;
        let bound = self.m[x * n + y];
        // Row y cannot tighten through its own propagation (the consistency
        // check guarantees d[y][x] + bound ≥ (0, ≤)), so it can serve as a
        // shared immutable source row while every other row is relaxed.
        let (before, rest) = self.m.split_at_mut(y * n);
        let (row_y, after) = rest.split_at_mut(n);
        let relax = |row: &mut [Bound]| {
            let dix = row[x];
            if dix.is_infinity() {
                return;
            }
            let via_ix = dix + bound;
            for (d, &dyj) in row.iter_mut().zip(row_y.iter()) {
                let via = via_ix + dyj;
                if via < *d {
                    *d = via;
                }
            }
        };
        for row in before.chunks_exact_mut(n) {
            relax(row);
        }
        for row in after.chunks_exact_mut(n) {
            relax(row);
        }
    }

    /// Restores the canonical form after a widening *loosened* entries in row
    /// and/or column `t` (every entry not involving `t` is still canonical,
    /// and no entry is below its pre-widening value).  The stale sides are
    /// re-tightened through single intermediates — sufficient because the
    /// rest of the matrix is closed.
    ///
    /// No interior pivot on `t` is needed, which a generic "row/column `t` is
    /// stale" repair would require: repairs only *lower* entries back toward
    /// (never below) their pre-widening canonical values, so for every
    /// interior pair `m[i][j] ≤ m[i][t]_old + m[t][j]_old ≤ m[i][t] + m[t][j]`
    /// already holds.  The canonicity re-close assertions in the incremental
    /// differential test exercise exactly this argument.
    fn close_clock_idx(&mut self, t: usize, row_stale: bool, col_stale: bool) {
        let n = self.dim;
        for a in 0..n {
            if a == t {
                continue;
            }
            if row_stale {
                let dta = self.m[t * n + a];
                if !dta.is_infinity() {
                    for j in 0..n {
                        let via = dta + self.m[a * n + j];
                        if via < self.m[t * n + j] {
                            self.m[t * n + j] = via;
                        }
                    }
                }
            }
            if col_stale {
                let dat = self.m[a * n + t];
                if !dat.is_infinity() {
                    for i in 0..n {
                        let via = self.m[i * n + a] + dat;
                        if via < self.m[i * n + t] {
                            self.m[i * n + t] = via;
                        }
                    }
                }
            }
        }
        // Widening only loosens the zone, so the repair cannot create a
        // negative cycle; guard anyway so a misuse flags emptiness instead of
        // silently corrupting queries.
        if self.m[t * n + t] < Bound::LE_ZERO {
            self.empty = true;
            return;
        }
        self.m[t * n + t] = Bound::LE_ZERO;
    }

    /// Intersects the zone with the constraint `c.left − c.right ≺ c.bound`,
    /// restoring the canonical form incrementally.
    pub fn constrain(&mut self, left: Clock, right: Clock, bound: Bound) -> &mut Self {
        if self.empty || bound.is_infinity() {
            return self;
        }
        let (x, y) = (left.index(), right.index());
        debug_assert!(x < self.dim && y < self.dim);
        if self.at(y, x) + bound < Bound::LE_ZERO {
            self.empty = true;
            return self;
        }
        if bound < self.at(x, y) {
            *self.at_mut(x, y) = bound;
            // Restore the canonical form: the matrix was canonical before, so
            // every new shortest path uses the tightened edge (x, y) at most
            // once, i.e. d[i][j] = min(d[i][j], d[i][x] + bound + d[y][j]).
            if incremental_close_enabled() {
                self.close1_idx(x, y);
            } else {
                self.close();
            }
        }
        self
    }

    /// Intersects with a [`Constraint`].
    pub fn and(&mut self, c: &Constraint) -> &mut Self {
        self.constrain(c.left, c.right, c.bound)
    }

    /// Intersects with a conjunction of constraints.
    pub fn and_all<'a, I: IntoIterator<Item = &'a Constraint>>(&mut self, cs: I) -> &mut Self {
        for c in cs {
            if self.empty {
                break;
            }
            self.and(c);
        }
        self
    }

    /// `true` iff the zone has a non-empty intersection with the constraint.
    pub fn satisfies(&self, c: &Constraint) -> bool {
        if self.empty {
            return false;
        }
        if c.bound.is_infinity() {
            return true;
        }
        self.at(c.right.index(), c.left.index()) + c.bound >= Bound::LE_ZERO
    }

    /// `true` iff *every* valuation of the zone satisfies the constraint,
    /// i.e. the stored bound on `left − right` is at least as tight.
    pub fn implies(&self, c: &Constraint) -> bool {
        if self.empty {
            return true;
        }
        self.at(c.left.index(), c.right.index()) <= c.bound
    }

    /// Delay operator (`up`, also written `Z↑`): removes all upper bounds on
    /// individual clocks, letting arbitrary time pass.
    pub fn up(&mut self) -> &mut Self {
        if self.empty {
            return self;
        }
        for i in 1..self.dim {
            *self.at_mut(i, 0) = Bound::INFINITY;
        }
        self
    }

    /// Past operator (`down`, `Z↓`): the set of valuations from which a
    /// valuation in the zone is reachable by delaying.
    pub fn down(&mut self) -> &mut Self {
        if self.empty {
            return self;
        }
        for j in 1..self.dim {
            *self.at_mut(0, j) = Bound::LE_ZERO;
            for i in 1..self.dim {
                let dij = self.at(i, j);
                if dij < self.at(0, j) {
                    *self.at_mut(0, j) = dij;
                }
            }
        }
        self
    }

    /// Removes all constraints on clock `x` (existential quantification),
    /// keeping it non-negative.
    pub fn free(&mut self, x: Clock) -> &mut Self {
        if self.empty {
            return self;
        }
        let x = x.index();
        debug_assert!(x > 0);
        for j in 0..self.dim {
            if j != x {
                *self.at_mut(x, j) = Bound::INFINITY;
                let dj0 = self.at(j, 0);
                *self.at_mut(j, x) = dj0;
            }
        }
        // x >= 0
        *self.at_mut(0, x) = Bound::LE_ZERO;
        *self.at_mut(x, 0) = Bound::INFINITY;
        self
    }

    /// Resets clock `x` to the constant `value`.
    pub fn reset(&mut self, x: Clock, value: i64) -> &mut Self {
        if self.empty {
            return self;
        }
        let x = x.index();
        debug_assert!(x > 0, "cannot reset the reference clock");
        let pos = Bound::weak(value);
        let neg = Bound::weak(-value);
        for j in 0..self.dim {
            if j != x {
                let d0j = self.at(0, j);
                *self.at_mut(x, j) = pos + d0j;
                let dj0 = self.at(j, 0);
                *self.at_mut(j, x) = dj0 + neg;
            }
        }
        *self.at_mut(x, x) = Bound::LE_ZERO;
        self
    }

    /// Assigns `x := y` (clock copy).
    pub fn copy_clock(&mut self, x: Clock, y: Clock) -> &mut Self {
        if self.empty || x == y {
            return self;
        }
        let (x, y) = (x.index(), y.index());
        debug_assert!(x > 0);
        for j in 0..self.dim {
            if j != x {
                let dyj = self.at(y, j);
                *self.at_mut(x, j) = dyj;
                let djy = self.at(j, y);
                *self.at_mut(j, x) = djy;
            }
        }
        *self.at_mut(x, y) = Bound::LE_ZERO;
        *self.at_mut(y, x) = Bound::LE_ZERO;
        *self.at_mut(x, x) = Bound::LE_ZERO;
        self
    }

    /// Shifts clock `x` by `delta` (`x := x + delta`), clamping at zero.
    pub fn shift(&mut self, x: Clock, delta: i64) -> &mut Self {
        if self.empty {
            return self;
        }
        let xi = x.index();
        debug_assert!(xi > 0);
        let pos = Bound::weak(delta);
        let neg = Bound::weak(-delta);
        let mut saturated = false;
        for j in 0..self.dim {
            if j != xi {
                if !self.at(xi, j).is_infinity() {
                    let b = self.at(xi, j) + pos;
                    saturated |= b.is_infinity();
                    *self.at_mut(xi, j) = b;
                }
                if !self.at(j, xi).is_infinity() {
                    let b = self.at(j, xi) + neg;
                    saturated |= b.is_infinity();
                    *self.at_mut(j, xi) = b;
                }
            }
        }
        // The shift proper is a bijection on valuations (row x gains `delta`,
        // column x loses it), so every triangle inequality — and with it the
        // canonical form — survives entry-for-entry; only the clamp back to
        // x ≥ 0 genuinely tightens, and a single-entry tightening closes in
        // O(n²).  Bound saturation (a shifted entry collapsing to ∞) breaks
        // the entry-for-entry argument, so that astronomical case keeps the
        // full close.
        if incremental_close_enabled() && !saturated {
            self.constrain(Clock::REF, x, Bound::LE_ZERO);
        } else {
            let lower = self.at(0, xi).min(Bound::LE_ZERO);
            *self.at_mut(0, xi) = lower;
            self.close();
        }
        self
    }

    /// Existentially projects clock `x` away (the zone of all valuations that
    /// agree with a member valuation on every *other* clock), keeping `x`
    /// non-negative.
    ///
    /// This is the "forget" half of dead-clock reduction: once a static
    /// activity analysis has proved that `x` is reset before it is next read,
    /// its current value carries no information and may be dropped.  The
    /// operation preserves the canonical form.  Prefer
    /// [`Dbm::reset_to_canonical`] for states that are hashed or compared:
    /// pinning the clock keeps every matrix entry finite and makes zones that
    /// agree on the live clocks *bitwise identical*, whereas freeing leaves
    /// `∞` rows whose inclusion checks still work but whose delay closure
    /// differs from freshly-reset clocks.
    pub fn free_clock(&mut self, x: Clock) -> &mut Self {
        self.free(x)
    }

    /// Resets clock `x` to the canonical dead-clock value `0`.
    ///
    /// Equivalent to [`Dbm::reset`] with value `0`: after the call the zone's
    /// projection onto `x` is exactly `{0}` and every `x` row/column entry is
    /// derived from the reference row/column, so the result depends only on
    /// the projection of the zone onto the *other* clocks.  Two zones that
    /// agree on all live clocks therefore become equal once every dead clock
    /// is reset to the canonical value — which is what lets the explorer's
    /// passed-list inclusion checks and hashes merge states that differ only
    /// in dead-clock valuations.  Preserves the canonical form.
    pub fn reset_to_canonical(&mut self, x: Clock) -> &mut Self {
        self.reset(x, 0)
    }

    /// Applies [`Dbm::reset_to_canonical`] to every clock whose entry in
    /// `active` is `false` (dead clocks), leaving active clocks untouched.
    ///
    /// `active` is indexed like the matrix (entry 0 is the reference clock and
    /// ignored); missing entries are conservatively treated as active.
    /// Returns the number of clocks that were canonicalized.  Preserves the
    /// canonical form and never empties a non-empty zone.
    pub fn restrict_to_active(&mut self, active: &[bool]) -> usize {
        if self.empty {
            return 0;
        }
        let mut eliminated = 0;
        for i in 1..self.dim {
            if !active.get(i).copied().unwrap_or(true) {
                self.reset_to_canonical(Clock(i as u32));
                eliminated += 1;
            }
        }
        eliminated
    }

    /// The convex hull (smallest zone containing both operands): the
    /// element-wise maximum of the two canonical matrices, which is again
    /// canonical (each triangle inequality holds in both operands, hence for
    /// the element-wise maximum).
    pub fn convex_hull(&self, other: &Dbm) -> Dbm {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        if self.empty {
            return other.clone();
        }
        if other.empty {
            return self.clone();
        }
        let mut hull = self.clone();
        hull.hull_in_place(other);
        hull
    }

    /// Widens `self` to the convex hull of `self` and `other` in place —
    /// [`Dbm::convex_hull`] without the clone, for hull folds over many
    /// zones.  Both operands must be non-empty.
    pub fn hull_in_place(&mut self, other: &Dbm) {
        debug_assert_eq!(self.dim, other.dim, "dimension mismatch");
        debug_assert!(!self.empty && !other.empty);
        for (h, o) in self.m.iter_mut().zip(&other.m) {
            if *o > *h {
                *h = *o;
            }
        }
    }

    /// Sound one-sided disjointness test: `true` means the zones certainly
    /// have an empty intersection — some pair of opposing bounds forms a
    /// negative two-edge cycle (`self[i,j] + other[j,i] < 0`); `false` means
    /// they *may* intersect (longer alternating negative cycles escape the
    /// test).  O(n²) and allocation-free, which makes it the filter that
    /// keeps zone subtraction from fragmenting pieces around zones it never
    /// touches.
    pub(crate) fn surely_disjoint(&self, other: &Dbm) -> bool {
        debug_assert_eq!(self.dim, other.dim, "dimension mismatch");
        let n = self.dim;
        debug_assert_eq!(n, other.dim, "dimension mismatch");
        // Pass 1, O(n): opposing absolute bounds.  Zones on a passed list
        // usually separate on a single clock's distance to the reference
        // clock, so most positives never reach the full scan.
        for t in 1..n {
            if self.m[t] + other.m[t * n] < Bound::LE_ZERO
                || self.m[t * n] + other.m[t] < Bound::LE_ZERO
            {
                return true;
            }
        }
        // Pass 2, O(n²): every opposing pair.  `∞` entries saturate the sum
        // to `∞`, which is never negative, so they need no special-casing;
        // diagonals contribute `(0,≤) + (0,≤)`, also never negative.
        for i in 0..n {
            for j in 0..n {
                if self.m[i * n + j] + other.m[j * n + i] < Bound::LE_ZERO {
                    return true;
                }
            }
        }
        false
    }

    /// Splits `self \ other` into zones, one per facet of `other` that cuts
    /// into the remainder (the part beyond the facet), invoking `on_piece`
    /// for every non-empty piece.  Stops early — returning `false` — as soon
    /// as `on_piece` does, which lets [`Dbm::try_merge`] abort on the first
    /// uncovered piece.  Both operands must be non-empty and same-dimension.
    pub(crate) fn split_off_difference<F: FnMut(Dbm) -> bool>(
        &self,
        other: &Dbm,
        mut on_piece: F,
    ) -> bool {
        debug_assert!(!self.empty && !other.empty);
        let mut rem = self.clone();
        for i in 0..self.dim {
            for j in 0..self.dim {
                if i == j {
                    continue;
                }
                let facet = other.at(i, j);
                if facet.is_infinity() || rem.at(i, j) <= facet {
                    // The remainder already satisfies this facet (canonical
                    // bounds are tight), nothing to split off.
                    continue;
                }
                // The part of the remainder beyond the facet: ¬(xi − xj ≺ c)
                // is (xj − xi ≺' −c) with flipped strictness.
                let mut piece = rem.clone();
                piece.constrain(
                    Clock(j as u32),
                    Clock(i as u32),
                    Bound::new(-facet.constant(), !facet.is_strict()),
                );
                if !piece.is_empty() && !on_piece(piece) {
                    return false;
                }
                rem.constrain(Clock(i as u32), Clock(j as u32), facet);
                if rem.is_empty() {
                    return true;
                }
            }
        }
        // What is left of `rem` lies inside `other` and is discarded.
        true
    }

    /// The set difference `self \ other` as a list of (possibly overlapping-
    /// free, jointly exhaustive) zones: for every facet of `other` that cuts
    /// into the remainder, the part beyond the facet is split off.
    pub fn subtract(&self, other: &Dbm) -> Vec<Dbm> {
        if self.empty {
            return Vec::new();
        }
        if other.empty {
            return vec![self.clone()];
        }
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        // Disjoint operands: the difference is `self` itself.  Detecting
        // this up front costs one scan; missing it would split `self` into
        // up to n² pieces that reassemble to `self` the hard way.  (Not
        // inside `split_off_difference`: its other caller, `try_merge`,
        // subtracts a zone from its own hull — never disjoint.)
        if self.surely_disjoint(other) {
            return vec![self.clone()];
        }
        let mut pieces = Vec::new();
        self.split_off_difference(other, |piece| {
            pieces.push(piece);
            true
        });
        pieces
    }

    /// Attempts the *exact* union of two zones: returns their convex hull iff
    /// the union is convex (`hull = self ∪ other`), `None` otherwise.
    ///
    /// Unlike UPPAAL's `-C` convex-hull over-approximation this never adds
    /// valuations, so replacing the two zones by the merged one preserves all
    /// verdicts and suprema exactly.  The exactness check is
    /// `hull \ self ⊆ other`, computed with [`Dbm::subtract`].
    pub fn try_merge(&self, other: &Dbm) -> Option<Dbm> {
        if self.empty {
            return Some(other.clone());
        }
        if other.empty {
            return Some(self.clone());
        }
        let hull = self.convex_hull(other);
        // Fused subtraction + coverage check with early exit: split off the
        // parts of the hull beyond each of `self`'s facets and require each
        // to lie inside `other`.  Most failing attempts abort on the first
        // piece, which keeps failed merges cheap on the explorer's hot path.
        if hull.split_off_difference(self, |piece| other.includes(&piece)) {
            Some(hull)
        } else {
            None
        }
    }

    /// Element-wise intersection of two zones over the same clocks.
    pub fn intersect(&mut self, other: &Dbm) -> &mut Self {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        if self.empty {
            return self;
        }
        if other.empty {
            self.empty = true;
            return self;
        }
        let n = self.dim;
        if incremental_close_enabled() {
            // Explorer-path intersections usually differ in a handful of
            // entries, and each single-entry tightening re-canonicalizes in
            // O(n²) (often less: entries the previous tightening already
            // implied are skipped).  Past n differing entries the bulk copy
            // plus one full O(n³) close wins.  Both routes end at the same
            // matrix — the canonical form of a zone is unique.
            let tighter = self
                .m
                .iter()
                .zip(&other.m)
                .filter(|(mine, theirs)| theirs < mine)
                .count();
            if tighter <= n {
                for i in 0..n {
                    for j in 0..n {
                        let b = other.m[i * n + j];
                        if b < self.m[i * n + j] {
                            self.constrain(Clock(i as u32), Clock(j as u32), b);
                            if self.empty {
                                return self;
                            }
                        }
                    }
                }
                return self;
            }
        }
        let mut changed = false;
        for i in 0..n * n {
            if other.m[i] < self.m[i] {
                self.m[i] = other.m[i];
                changed = true;
            }
        }
        if changed {
            self.close();
        }
        self
    }

    /// Compares two canonical zones.
    pub fn relation(&self, other: &Dbm) -> Relation {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        match (self.empty, other.empty) {
            (true, true) => return Relation::Equal,
            (true, false) => return Relation::Subset,
            (false, true) => return Relation::Superset,
            (false, false) => {}
        }
        let mut le = true; // self ⊆ other
        let mut ge = true; // self ⊇ other
        for i in 0..self.dim * self.dim {
            if self.m[i] > other.m[i] {
                le = false;
            }
            if self.m[i] < other.m[i] {
                ge = false;
            }
            if !le && !ge {
                return Relation::Incomparable;
            }
        }
        match (le, ge) {
            (true, true) => Relation::Equal,
            (true, false) => Relation::Subset,
            (false, true) => Relation::Superset,
            (false, false) => Relation::Incomparable,
        }
    }

    /// `true` iff this zone contains every valuation of `other`.
    pub fn includes(&self, other: &Dbm) -> bool {
        matches!(self.relation(other), Relation::Equal | Relation::Superset)
    }

    /// `true` iff the concrete valuation (indexed by clock, entry 0 ignored)
    /// lies inside the zone.
    pub fn contains_point(&self, valuation: &[i64]) -> bool {
        if self.empty {
            return false;
        }
        assert!(valuation.len() >= self.dim);
        for i in 0..self.dim {
            let vi = if i == 0 { 0 } else { valuation[i] };
            for (j, &vraw) in valuation.iter().enumerate().take(self.dim) {
                let vj = if j == 0 { 0 } else { vraw };
                if !self.at(i, j).admits(vi - vj) {
                    return false;
                }
            }
        }
        true
    }

    /// Classical maximum-bounds extrapolation (`ExtraM`): widens every bound
    /// that exceeds the maximal constant `max_bounds[i]` the clock is ever
    /// compared against.  `max_bounds[0]` is ignored; missing entries default
    /// to `0`.
    ///
    /// This abstraction is sound for timed automata whose guards and
    /// invariants contain no difference constraints (`x − y ≺ c`), which holds
    /// for every automaton produced by the architecture front-end.
    pub fn extrapolate_max_bounds(&mut self, max_bounds: &[i64]) -> &mut Self {
        // ExtraM is exactly ExtraLU with both constant tables equal: the two
        // widening rules coincide.  One implementation keeps the incremental
        // and batch paths in one place.
        self.extrapolate_lu(max_bounds, max_bounds)
    }

    /// Applies the ExtraLU widening rules to row and column `t` only: row
    /// entries above the lower-bound cap `(l_t, ≤)` become `∞`, column
    /// entries below the floor `(−u_t, <)` are raised to it (row 0 is
    /// additionally kept at or below `(0, ≤)` so clocks stay non-negative).
    /// Returns which sides changed — `(row, column)` — so the caller can
    /// re-close only the stale side(s) of clock `t`.
    fn widen_clock(&mut self, t: usize, lt: i64, ut: i64) -> (bool, bool) {
        let n = self.dim;
        let row_cap = Bound::weak(lt);
        let col_floor = Bound::strict(-ut);
        let mut row_changed = false;
        for j in 0..n {
            if j == t {
                continue;
            }
            let b = self.m[t * n + j];
            if !b.is_infinity() && b > row_cap {
                self.m[t * n + j] = Bound::INFINITY;
                row_changed = true;
            }
        }
        let mut col_changed = false;
        for i in 0..n {
            if i == t {
                continue;
            }
            let floor = if i == 0 {
                col_floor.min(Bound::LE_ZERO)
            } else {
                col_floor
            };
            let b = self.m[i * n + t];
            if !b.is_infinity() && b < floor {
                self.m[i * n + t] = floor;
                col_changed = true;
            }
        }
        (row_changed, col_changed)
    }

    /// `true` iff no entry violates the ExtraLU widening rules: every finite
    /// entry of a non-reference row `i` is at most `(l_i, ≤)`, and every
    /// entry of column `j` is at least `(−u_j, <)` (row 0 is also capped at
    /// `(0, ≤)`, which the widening never disturbs).  A matrix satisfying
    /// this is a fixpoint of widen∘close, which is what bounds the number of
    /// distinct extrapolated zones and hence guarantees the explorer
    /// terminates.
    fn is_lu_fixpoint(&self, l: &impl Fn(usize) -> i64, u: &impl Fn(usize) -> i64) -> bool {
        let n = self.dim;
        for i in 0..n {
            let row_cap = Bound::weak(l(i));
            for j in 0..n {
                if i == j {
                    continue;
                }
                let b = self.m[i * n + j];
                if b.is_infinity() {
                    continue;
                }
                if i != 0 && b > row_cap {
                    return false;
                }
                if b < Bound::strict(-u(j)) {
                    return false;
                }
            }
        }
        true
    }

    /// Lower/upper-bounds extrapolation (`ExtraLU`): like
    /// [`Dbm::extrapolate_max_bounds`] but distinguishes the maximal constants
    /// used in lower bounds (`lower[i]`, guards of the form `x ≥ c` / `x > c`)
    /// from those used in upper bounds (`upper[i]`, `x ≤ c` / `x < c` and
    /// invariants).  Coarser than `ExtraM`, still sound for diagonal-free
    /// automata.
    pub fn extrapolate_lu(&mut self, lower: &[i64], upper: &[i64]) -> &mut Self {
        if self.empty {
            return self;
        }
        let l = |i: usize| -> i64 { lower.get(i).copied().unwrap_or(0) };
        let u = |i: usize| -> i64 { upper.get(i).copied().unwrap_or(0) };
        // Incremental path: widen one clock's row/column at a time and repair
        // the canonical form with the O(n²) single-clock closure, keeping the
        // matrix canonical between clocks.  Re-closing a widened clock can
        // re-derive an entry of an *earlier* clock above its threshold, so
        // one sweep alone is not always a fixpoint of widen∘close — and the
        // explorer's termination argument needs the fixpoint property (it
        // bounds every finite entry by the constant tables, giving finitely
        // many extrapolated zones).  Iterating sweeps does not converge on
        // such matrices (the same over-cap entries are re-derived each
        // round), so after the sweep an O(n²) scan checks the fixpoint
        // condition; on the rare violation we fall through to the batch
        // widen + full close below, whose result is always a fixpoint.
        // Verdicts and suprema are preserved either way.  The reference
        // row/column rules must be trivial (zero constants for clock 0) for
        // the per-clock split to cover every entry; every constant table the
        // front-end produces satisfies that.
        if incremental_close_enabled() && l(0) == 0 && u(0) == 0 {
            for t in 1..self.dim {
                let (row, col) = self.widen_clock(t, l(t), u(t));
                if row || col {
                    self.close_clock_idx(t, row, col);
                    if self.empty {
                        return self;
                    }
                }
            }
            if self.is_lu_fixpoint(&l, &u) {
                return self;
            }
            // else: fall through to the batch path, which widens every
            // remaining over-cap entry at once and restores canonical form
            // with one full close.
        }
        // Batch path: widen every entry, then one full close.
        let mut changed = false;
        for i in 0..self.dim {
            for j in 0..self.dim {
                if i == j {
                    continue;
                }
                let b = self.at(i, j);
                if i != 0 && !b.is_infinity() && b > Bound::weak(l(i)) {
                    *self.at_mut(i, j) = Bound::INFINITY;
                    changed = true;
                } else if !b.is_infinity() && b < Bound::strict(-u(j)) {
                    *self.at_mut(i, j) = Bound::strict(-u(j));
                    changed = true;
                }
            }
        }
        if changed {
            for j in 1..self.dim {
                let b = self.at(0, j).min(Bound::LE_ZERO);
                *self.at_mut(0, j) = b;
            }
            self.close();
        }
        self
    }

    /// A stable 64-bit fingerprint of the canonical matrix, usable as a hash
    /// key for passed-list lookups.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

impl Hash for Dbm {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.empty.hash(state);
        if !self.empty {
            for b in &self.m {
                b.raw().hash(state);
            }
        }
    }
}

impl fmt::Debug for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            return write!(f, "Dbm(empty, {} clocks)", self.num_clocks());
        }
        writeln!(f, "Dbm({} clocks)", self.num_clocks())?;
        for i in 0..self.dim {
            write!(f, "  ")?;
            for j in 0..self.dim {
                write!(f, "{:>10} ", format!("{}", self.at(i, j)))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            return write!(f, "false");
        }
        let mut first = true;
        for i in 0..self.dim {
            for j in 0..self.dim {
                if i == j {
                    continue;
                }
                let b = self.at(i, j);
                if b.is_infinity() || (i == 0 && b == Bound::LE_ZERO) {
                    continue;
                }
                if !first {
                    write!(f, " ∧ ")?;
                }
                first = false;
                if j == 0 {
                    write!(f, "x{i} {b}")?;
                } else if i == 0 {
                    let op = if b.is_strict() { ">" } else { ">=" };
                    write!(f, "x{j} {op} {}", -b.constant())?;
                } else {
                    write!(f, "x{i}-x{j} {b}")?;
                }
            }
        }
        if first {
            write!(f, "true")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RelOp;

    fn x() -> Clock {
        Clock(1)
    }
    fn y() -> Clock {
        Clock(2)
    }

    #[test]
    fn zero_zone_is_origin() {
        let z = Dbm::zero(2);
        assert!(!z.is_empty());
        assert!(z.contains_point(&[0, 0, 0]));
        assert!(!z.contains_point(&[0, 1, 0]));
        assert_eq!(z.sup(x()), Bound::weak(0));
        assert_eq!(z.inf(x()), (0, false));
    }

    #[test]
    fn universe_contains_everything_nonnegative() {
        let u = Dbm::universe(2);
        assert!(u.contains_point(&[0, 0, 0]));
        assert!(u.contains_point(&[0, 1000, 3]));
        assert_eq!(u.sup(x()), Bound::INFINITY);
    }

    #[test]
    fn up_allows_uniform_delay() {
        let mut z = Dbm::zero(2);
        z.up();
        assert!(z.contains_point(&[0, 5, 5]));
        assert!(!z.contains_point(&[0, 5, 4])); // clocks drift together
        assert_eq!(z.sup(x()), Bound::INFINITY);
        assert_eq!(z.get(x(), y()), Bound::weak(0));
    }

    #[test]
    fn constrain_and_emptiness() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(x(), Clock::REF, Bound::weak(10)); // x <= 10
        z.constrain(Clock::REF, x(), Bound::weak(-4)); // x >= 4
        assert!(!z.is_empty());
        assert!(z.contains_point(&[0, 4, 4]));
        assert!(z.contains_point(&[0, 10, 10]));
        assert!(!z.contains_point(&[0, 3, 3]));
        // Now make it empty: x < 4
        z.constrain(x(), Clock::REF, Bound::strict(4));
        assert!(z.is_empty());
    }

    #[test]
    fn constrain_is_idempotent_for_weaker_bounds() {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain(Clock(1), Clock::REF, Bound::weak(5));
        let snapshot = z.clone();
        z.constrain(Clock(1), Clock::REF, Bound::weak(9)); // weaker, no effect
        assert_eq!(z, snapshot);
    }

    #[test]
    fn reset_pins_single_clock() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(x(), Clock::REF, Bound::weak(10));
        z.reset(y(), 0);
        // Now y = 0, x in [0, 10], and x - y = x.
        assert!(z.contains_point(&[0, 7, 0]));
        assert!(!z.contains_point(&[0, 7, 1]));
        assert_eq!(z.sup(y()), Bound::weak(0));
        assert_eq!(z.get(x(), y()), Bound::weak(10));
    }

    #[test]
    fn reset_to_nonzero_value() {
        let mut z = Dbm::zero(1);
        z.up();
        z.reset(Clock(1), 5);
        assert!(z.contains_point(&[0, 5]));
        assert!(!z.contains_point(&[0, 4]));
        assert_eq!(z.sup(Clock(1)), Bound::weak(5));
        assert_eq!(z.inf(Clock(1)), (5, false));
    }

    #[test]
    fn free_removes_constraints() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(x(), Clock::REF, Bound::weak(3));
        z.free(x());
        assert!(z.contains_point(&[0, 100, 2]));
        assert!(z.contains_point(&[0, 0, 2]));
        // y still bounded by x's old constraint? y was only bounded via x <= 3 and x == y
        assert!(z.contains_point(&[0, 50, 3]));
        assert!(!z.contains_point(&[0, 50, 4]));
    }

    #[test]
    fn copy_clock_equates_clocks() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(y(), Clock::REF, Bound::weak(4));
        z.copy_clock(x(), y());
        assert!(z.contains_point(&[0, 2, 2]));
        assert!(!z.contains_point(&[0, 2, 3]));
        assert_eq!(z.sup(x()), Bound::weak(4));
    }

    #[test]
    fn shift_moves_clock() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(x(), Clock::REF, Bound::weak(3));
        z.shift(x(), 10);
        assert!(z.contains_point(&[0, 10, 0]));
        assert!(z.contains_point(&[0, 13, 3]));
        assert!(!z.contains_point(&[0, 9, 0]));
        assert_eq!(z.sup(x()), Bound::weak(13));
    }

    #[test]
    fn down_computes_past() {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain(Clock::REF, Clock(1), Bound::weak(-5)); // x >= 5
        z.down();
        // Every valuation with x <= anything can delay into x >= 5, so past is x >= 0.
        assert!(z.contains_point(&[0, 0]));
        assert!(z.contains_point(&[0, 7]));
    }

    #[test]
    fn relation_detects_subset() {
        let mut big = Dbm::zero(1);
        big.up();
        big.constrain(Clock(1), Clock::REF, Bound::weak(10));
        let mut small = Dbm::zero(1);
        small.up();
        small.constrain(Clock(1), Clock::REF, Bound::weak(5));
        assert_eq!(small.relation(&big), Relation::Subset);
        assert_eq!(big.relation(&small), Relation::Superset);
        assert_eq!(big.relation(&big.clone()), Relation::Equal);
        assert!(big.includes(&small));
        assert!(!small.includes(&big));
    }

    #[test]
    fn relation_incomparable() {
        let mut a = Dbm::zero(1);
        a.up();
        a.constrain(Clock(1), Clock::REF, Bound::weak(5)); // x in [0,5]
        let mut b = Dbm::zero(1);
        b.up();
        b.constrain(Clock::REF, Clock(1), Bound::weak(-3)); // x >= 3
        assert_eq!(a.relation(&b), Relation::Incomparable);
    }

    #[test]
    fn empty_zone_relations() {
        let e = Dbm::empty(1);
        let z = Dbm::zero(1);
        assert_eq!(e.relation(&z), Relation::Subset);
        assert_eq!(z.relation(&e), Relation::Superset);
        assert_eq!(e.relation(&Dbm::empty(1)), Relation::Equal);
        assert!(z.includes(&e));
    }

    #[test]
    fn intersect_zones() {
        let mut a = Dbm::zero(1);
        a.up();
        a.constrain(Clock(1), Clock::REF, Bound::weak(5));
        let mut b = Dbm::zero(1);
        b.up();
        b.constrain(Clock::REF, Clock(1), Bound::weak(-3));
        a.intersect(&b);
        assert!(a.contains_point(&[0, 3]));
        assert!(a.contains_point(&[0, 5]));
        assert!(!a.contains_point(&[0, 2]));
        assert!(!a.contains_point(&[0, 6]));

        let mut c = Dbm::zero(1);
        c.up();
        c.constrain(Clock(1), Clock::REF, Bound::strict(3)); // x < 3
        a.intersect(&c);
        assert!(a.is_empty());
    }

    #[test]
    fn satisfies_and_implies() {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain(Clock(1), Clock::REF, Bound::weak(5)); // x in [0,5]
        let le_10 = Constraint::upper(Clock(1), Bound::weak(10));
        let ge_3 = Constraint::lower(Clock(1), 3, false);
        let ge_7 = Constraint::lower(Clock(1), 7, false);
        assert!(z.satisfies(&le_10));
        assert!(z.implies(&le_10));
        assert!(z.satisfies(&ge_3));
        assert!(!z.implies(&ge_3));
        assert!(!z.satisfies(&ge_7));
    }

    #[test]
    fn extrapolation_widens_large_bounds() {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain(Clock(1), Clock::REF, Bound::weak(1_000));
        z.constrain(Clock::REF, Clock(1), Bound::weak(-900)); // x in [900, 1000]
        let mut e = z.clone();
        e.extrapolate_max_bounds(&[0, 10]); // max constant for x is 10
        // After extrapolation the zone must include the original zone.
        assert!(e.includes(&z));
        // And bounds beyond the max constant are gone.
        assert_eq!(e.sup(Clock(1)), Bound::INFINITY);
    }

    #[test]
    fn extrapolation_preserves_small_zones() {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain(Clock(1), Clock::REF, Bound::weak(5));
        let orig = z.clone();
        z.extrapolate_max_bounds(&[0, 10]);
        assert_eq!(z.relation(&orig), Relation::Equal);
    }

    #[test]
    fn lu_extrapolation_is_coarser_or_equal_to_m() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(Clock(1), Clock::REF, Bound::weak(800));
        z.constrain(Clock::REF, Clock(2), Bound::weak(-300));
        let mut m = z.clone();
        m.extrapolate_max_bounds(&[0, 10, 10]);
        let mut lu = z.clone();
        lu.extrapolate_lu(&[0, 10, 10], &[0, 10, 10]);
        // With equal L and U they coincide with ExtraM here.
        assert!(lu.includes(&z));
        assert!(m.includes(&z));
    }

    #[test]
    fn close_detects_negative_cycle() {
        let mut z = Dbm::universe(1);
        z.set_raw(Clock(1), Clock::REF, Bound::weak(2)); // x <= 2
        z.set_raw(Clock::REF, Clock(1), Bound::weak(-5)); // x >= 5
        z.close();
        assert!(z.is_empty());
    }

    #[test]
    fn fingerprint_stable_for_equal_zones() {
        let mut a = Dbm::zero(2);
        a.up();
        a.constrain(x(), Clock::REF, Bound::weak(5));
        let mut b = Dbm::zero(2);
        b.up();
        b.constrain(x(), Clock::REF, Bound::weak(5));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn from_rel_roundtrip_through_zone() {
        let mut z = Dbm::universe(2);
        for c in Constraint::from_rel(x(), Clock::REF, RelOp::Eq, 4) {
            z.and(&c);
        }
        assert!(z.contains_point(&[0, 4, 9]));
        assert!(!z.contains_point(&[0, 5, 9]));
    }

    #[test]
    fn reset_to_canonical_pins_dead_clock_to_zero() {
        let mut a = Dbm::zero(2);
        a.up();
        a.constrain(x(), Clock::REF, Bound::weak(5)); // x in [0, 5]
        a.reset(y(), 1);
        let mut b = Dbm::zero(2);
        b.up();
        b.constrain(x(), Clock::REF, Bound::weak(5));
        b.reset(y(), 3); // same x projection, y pinned differently
        assert!(a != b);
        a.reset_to_canonical(y());
        b.reset_to_canonical(y());
        // The zones agreed on the live clock x, so canonicalizing the dead
        // clock y makes them identical (same fingerprint for the passed list).
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.sup(y()), Bound::weak(0));
        assert_eq!(a.inf(y()), (0, false));
        // x's own bounds were untouched.
        assert_eq!(a.sup(x()), Bound::weak(5));
    }

    #[test]
    fn free_clock_is_projection() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(x(), Clock::REF, Bound::weak(3));
        z.free_clock(x());
        assert!(z.contains_point(&[0, 100, 2]));
        assert_eq!(z.sup(x()), Bound::INFINITY);
        // Canonical: re-closing changes nothing.
        let mut c = z.clone();
        c.close();
        assert_eq!(c.relation(&z), Relation::Equal);
    }

    #[test]
    fn restrict_to_active_canonicalizes_exactly_the_dead_clocks() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(x(), Clock::REF, Bound::weak(7));
        z.constrain(Clock::REF, y(), Bound::weak(-4));
        let live_sup = z.sup(x());
        // Entry 0 is the reference clock; x stays active, y is dead.
        let n = z.restrict_to_active(&[true, true, false]);
        assert_eq!(n, 1);
        assert_eq!(z.sup(x()), live_sup);
        assert_eq!(z.sup(y()), Bound::weak(0));
        // Missing entries are treated as active: nothing changes.
        let snapshot = z.clone();
        assert_eq!(z.restrict_to_active(&[true]), 0);
        assert_eq!(z, snapshot);
        // Idempotent.
        assert_eq!(z.restrict_to_active(&[true, true, false]), 1);
        assert_eq!(z, snapshot);
        // No-op on the empty zone.
        let mut e = Dbm::empty(2);
        assert_eq!(e.restrict_to_active(&[true, false, false]), 0);
        assert!(e.is_empty());
    }

    fn interval(lo: i64, hi: i64) -> Dbm {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain(Clock(1), Clock::REF, Bound::weak(hi));
        z.constrain(Clock::REF, Clock(1), Bound::weak(-lo));
        z
    }

    #[test]
    fn convex_hull_is_elementwise_max() {
        let a = interval(0, 2);
        let b = interval(5, 7);
        let h = a.convex_hull(&b);
        assert!(h.includes(&a) && h.includes(&b));
        assert!(h.contains_point(&[0, 3])); // the gap is filled
        // Hull with an empty zone is the other operand.
        assert_eq!(Dbm::empty(1).convex_hull(&a), a);
        assert_eq!(a.convex_hull(&Dbm::empty(1)), a);
        // Canonical: re-closing changes nothing.
        let mut c = h.clone();
        c.close();
        assert_eq!(c.relation(&h), Relation::Equal);
    }

    #[test]
    fn subtract_splits_off_the_right_pieces() {
        let z = interval(0, 10);
        let pieces = z.subtract(&interval(3, 5));
        assert!(!pieces.is_empty());
        let covered = |v: i64| pieces.iter().any(|p| p.contains_point(&[0, v]));
        assert!(covered(0) && covered(2) && covered(6) && covered(10));
        assert!(!covered(3) && !covered(4) && !covered(5));
        // Subtracting a superset leaves nothing.
        assert!(z.subtract(&interval(0, 20)).is_empty());
        // Subtracting the empty zone leaves the zone itself.
        let all = z.subtract(&Dbm::empty(1));
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].relation(&z), Relation::Equal);
    }

    #[test]
    fn try_merge_accepts_exactly_the_convex_unions() {
        // Overlapping intervals: union convex.
        let m = interval(0, 5).try_merge(&interval(3, 8)).expect("convex");
        assert_eq!(m.relation(&interval(0, 8)), Relation::Equal);
        // Adjacent intervals: union convex.
        assert!(interval(0, 5).try_merge(&interval(5, 8)).is_some());
        // Disjoint intervals with a gap: hull adds points, no merge.
        assert!(interval(0, 2).try_merge(&interval(5, 7)).is_none());
        // Two diagonal unit squares: hull adds the off-diagonal corners.
        let square = |lo: i64| {
            let mut z = Dbm::zero(2);
            z.up();
            z.constrain(x(), Clock::REF, Bound::weak(lo + 1));
            z.constrain(Clock::REF, x(), Bound::weak(-lo));
            z.free(y());
            z.constrain(y(), Clock::REF, Bound::weak(lo + 1));
            z.constrain(Clock::REF, y(), Bound::weak(-lo));
            z
        };
        assert!(square(0).try_merge(&square(2)).is_none());
        // A zone merges with itself and with any subset.
        let z = interval(2, 9);
        assert_eq!(z.try_merge(&z).unwrap().relation(&z), Relation::Equal);
        assert_eq!(z.try_merge(&interval(3, 5)).unwrap().relation(&z), Relation::Equal);
    }

    #[test]
    fn operations_on_empty_zone_are_noops() {
        let mut e = Dbm::empty(2);
        e.up();
        e.reset(x(), 3);
        e.free(y());
        e.constrain(x(), Clock::REF, Bound::weak(5));
        assert!(e.is_empty());
        assert!(!e.contains_point(&[0, 0, 0]));
    }
}
