//! The [`Dbm`] type and its zone operations.

use crate::{Bound, Clock, Constraint};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Result of comparing two zones over the same clocks, see [`Dbm::relation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// The zones contain exactly the same valuations.
    Equal,
    /// The left zone is strictly contained in the right zone.
    Subset,
    /// The left zone strictly contains the right zone.
    Superset,
    /// Neither zone contains the other.
    Incomparable,
}

/// A difference bound matrix over `num_clocks` real clocks plus the reference
/// clock.
///
/// Invariant maintained by every public operation: the matrix is *canonical*
/// (closed under shortest paths) and consistently flags emptiness, unless the
/// documentation of an operation says otherwise.  All mutating operations keep
/// clocks non-negative.
#[derive(Clone, PartialEq, Eq)]
pub struct Dbm {
    dim: usize,
    empty: bool,
    m: Vec<Bound>,
}

impl Dbm {
    /// The zone containing only the origin (all clocks equal to zero).
    pub fn zero(num_clocks: usize) -> Dbm {
        let dim = num_clocks + 1;
        Dbm {
            dim,
            empty: false,
            m: vec![Bound::LE_ZERO; dim * dim],
        }
    }

    /// The zone of all valuations with non-negative clocks.
    pub fn universe(num_clocks: usize) -> Dbm {
        let dim = num_clocks + 1;
        let mut d = Dbm {
            dim,
            empty: false,
            m: vec![Bound::INFINITY; dim * dim],
        };
        for i in 0..dim {
            *d.at_mut(i, i) = Bound::LE_ZERO;
            // x0 - xi <= 0, i.e. xi >= 0
            *d.at_mut(0, i) = Bound::LE_ZERO;
        }
        d
    }

    /// An explicitly empty zone.
    pub fn empty(num_clocks: usize) -> Dbm {
        let mut d = Dbm::zero(num_clocks);
        d.empty = true;
        d
    }

    /// Number of real clocks (dimension minus the reference clock).
    #[inline]
    pub fn num_clocks(&self) -> usize {
        self.dim - 1
    }

    /// Matrix dimension (number of clocks + 1).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> Bound {
        self.m[i * self.dim + j]
    }

    #[inline]
    fn at_mut(&mut self, i: usize, j: usize) -> &mut Bound {
        &mut self.m[i * self.dim + j]
    }

    /// The bound on `i − j` stored in the matrix.
    #[inline]
    pub fn get(&self, i: Clock, j: Clock) -> Bound {
        self.at(i.index(), j.index())
    }

    /// Sets the bound on `i − j` directly **without** restoring the canonical
    /// form; callers must invoke [`Dbm::close`] before using any query.
    pub fn set_raw(&mut self, i: Clock, j: Clock, b: Bound) {
        let (i, j) = (i.index(), j.index());
        *self.at_mut(i, j) = b;
    }

    /// `true` iff the zone contains no valuation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// Upper bound of a single clock (`x − x0`), `∞` if unbounded.
    #[inline]
    pub fn sup(&self, x: Clock) -> Bound {
        self.at(x.index(), 0)
    }

    /// Lower bound of a single clock as a pair `(value, strict)`; the clock is
    /// `≥ value` (or `> value` when strict).
    #[inline]
    pub fn inf(&self, x: Clock) -> (i64, bool) {
        let b = self.at(0, x.index());
        (-b.constant(), b.is_strict())
    }

    /// Canonicalizes the matrix with Floyd–Warshall and detects emptiness.
    ///
    /// All other operations keep the matrix canonical, so this is only needed
    /// after a sequence of [`Dbm::set_raw`] calls.
    pub fn close(&mut self) {
        if self.empty {
            return;
        }
        let n = self.dim;
        for k in 0..n {
            for i in 0..n {
                let dik = self.at(i, k);
                if dik.is_infinity() {
                    continue;
                }
                for j in 0..n {
                    let via = dik + self.at(k, j);
                    if via < self.at(i, j) {
                        *self.at_mut(i, j) = via;
                    }
                }
            }
            if self.at(k, k) < Bound::LE_ZERO {
                self.empty = true;
                return;
            }
        }
        for i in 0..n {
            if self.at(i, i) < Bound::LE_ZERO {
                self.empty = true;
                return;
            }
            *self.at_mut(i, i) = Bound::LE_ZERO;
        }
    }

    /// Intersects the zone with the constraint `c.left − c.right ≺ c.bound`,
    /// restoring the canonical form incrementally.
    pub fn constrain(&mut self, left: Clock, right: Clock, bound: Bound) -> &mut Self {
        if self.empty || bound.is_infinity() {
            return self;
        }
        let (x, y) = (left.index(), right.index());
        debug_assert!(x < self.dim && y < self.dim);
        if self.at(y, x) + bound < Bound::LE_ZERO {
            self.empty = true;
            return self;
        }
        if bound < self.at(x, y) {
            *self.at_mut(x, y) = bound;
            // Restore the canonical form: the matrix was canonical before, so
            // every new shortest path uses the tightened edge (x, y) at most
            // once, i.e. d[i][j] = min(d[i][j], d[i][x] + bound + d[y][j]).
            let n = self.dim;
            for i in 0..n {
                let dix = self.at(i, x);
                if dix.is_infinity() {
                    continue;
                }
                let via_ix = dix + bound;
                for j in 0..n {
                    let via = via_ix + self.at(y, j);
                    if via < self.at(i, j) {
                        *self.at_mut(i, j) = via;
                    }
                }
            }
        }
        self
    }

    /// Intersects with a [`Constraint`].
    pub fn and(&mut self, c: &Constraint) -> &mut Self {
        self.constrain(c.left, c.right, c.bound)
    }

    /// Intersects with a conjunction of constraints.
    pub fn and_all<'a, I: IntoIterator<Item = &'a Constraint>>(&mut self, cs: I) -> &mut Self {
        for c in cs {
            if self.empty {
                break;
            }
            self.and(c);
        }
        self
    }

    /// `true` iff the zone has a non-empty intersection with the constraint.
    pub fn satisfies(&self, c: &Constraint) -> bool {
        if self.empty {
            return false;
        }
        if c.bound.is_infinity() {
            return true;
        }
        self.at(c.right.index(), c.left.index()) + c.bound >= Bound::LE_ZERO
    }

    /// `true` iff *every* valuation of the zone satisfies the constraint,
    /// i.e. the stored bound on `left − right` is at least as tight.
    pub fn implies(&self, c: &Constraint) -> bool {
        if self.empty {
            return true;
        }
        self.at(c.left.index(), c.right.index()) <= c.bound
    }

    /// Delay operator (`up`, also written `Z↑`): removes all upper bounds on
    /// individual clocks, letting arbitrary time pass.
    pub fn up(&mut self) -> &mut Self {
        if self.empty {
            return self;
        }
        for i in 1..self.dim {
            *self.at_mut(i, 0) = Bound::INFINITY;
        }
        self
    }

    /// Past operator (`down`, `Z↓`): the set of valuations from which a
    /// valuation in the zone is reachable by delaying.
    pub fn down(&mut self) -> &mut Self {
        if self.empty {
            return self;
        }
        for j in 1..self.dim {
            *self.at_mut(0, j) = Bound::LE_ZERO;
            for i in 1..self.dim {
                let dij = self.at(i, j);
                if dij < self.at(0, j) {
                    *self.at_mut(0, j) = dij;
                }
            }
        }
        self
    }

    /// Removes all constraints on clock `x` (existential quantification),
    /// keeping it non-negative.
    pub fn free(&mut self, x: Clock) -> &mut Self {
        if self.empty {
            return self;
        }
        let x = x.index();
        debug_assert!(x > 0);
        for j in 0..self.dim {
            if j != x {
                *self.at_mut(x, j) = Bound::INFINITY;
                let dj0 = self.at(j, 0);
                *self.at_mut(j, x) = dj0;
            }
        }
        // x >= 0
        *self.at_mut(0, x) = Bound::LE_ZERO;
        *self.at_mut(x, 0) = Bound::INFINITY;
        self
    }

    /// Resets clock `x` to the constant `value`.
    pub fn reset(&mut self, x: Clock, value: i64) -> &mut Self {
        if self.empty {
            return self;
        }
        let x = x.index();
        debug_assert!(x > 0, "cannot reset the reference clock");
        let pos = Bound::weak(value);
        let neg = Bound::weak(-value);
        for j in 0..self.dim {
            if j != x {
                let d0j = self.at(0, j);
                *self.at_mut(x, j) = pos + d0j;
                let dj0 = self.at(j, 0);
                *self.at_mut(j, x) = dj0 + neg;
            }
        }
        *self.at_mut(x, x) = Bound::LE_ZERO;
        self
    }

    /// Assigns `x := y` (clock copy).
    pub fn copy_clock(&mut self, x: Clock, y: Clock) -> &mut Self {
        if self.empty || x == y {
            return self;
        }
        let (x, y) = (x.index(), y.index());
        debug_assert!(x > 0);
        for j in 0..self.dim {
            if j != x {
                let dyj = self.at(y, j);
                *self.at_mut(x, j) = dyj;
                let djy = self.at(j, y);
                *self.at_mut(j, x) = djy;
            }
        }
        *self.at_mut(x, y) = Bound::LE_ZERO;
        *self.at_mut(y, x) = Bound::LE_ZERO;
        *self.at_mut(x, x) = Bound::LE_ZERO;
        self
    }

    /// Shifts clock `x` by `delta` (`x := x + delta`), clamping at zero.
    pub fn shift(&mut self, x: Clock, delta: i64) -> &mut Self {
        if self.empty {
            return self;
        }
        let xi = x.index();
        debug_assert!(xi > 0);
        let pos = Bound::weak(delta);
        let neg = Bound::weak(-delta);
        for j in 0..self.dim {
            if j != xi {
                if !self.at(xi, j).is_infinity() {
                    let b = self.at(xi, j) + pos;
                    *self.at_mut(xi, j) = b;
                }
                if !self.at(j, xi).is_infinity() {
                    let b = self.at(j, xi) + neg;
                    *self.at_mut(j, xi) = b;
                }
            }
        }
        // Re-establish non-negativity and canonical form.
        let lower = self.at(0, xi).min(Bound::LE_ZERO);
        *self.at_mut(0, xi) = lower;
        self.close();
        self
    }

    /// Existentially projects clock `x` away (the zone of all valuations that
    /// agree with a member valuation on every *other* clock), keeping `x`
    /// non-negative.
    ///
    /// This is the "forget" half of dead-clock reduction: once a static
    /// activity analysis has proved that `x` is reset before it is next read,
    /// its current value carries no information and may be dropped.  The
    /// operation preserves the canonical form.  Prefer
    /// [`Dbm::reset_to_canonical`] for states that are hashed or compared:
    /// pinning the clock keeps every matrix entry finite and makes zones that
    /// agree on the live clocks *bitwise identical*, whereas freeing leaves
    /// `∞` rows whose inclusion checks still work but whose delay closure
    /// differs from freshly-reset clocks.
    pub fn free_clock(&mut self, x: Clock) -> &mut Self {
        self.free(x)
    }

    /// Resets clock `x` to the canonical dead-clock value `0`.
    ///
    /// Equivalent to [`Dbm::reset`] with value `0`: after the call the zone's
    /// projection onto `x` is exactly `{0}` and every `x` row/column entry is
    /// derived from the reference row/column, so the result depends only on
    /// the projection of the zone onto the *other* clocks.  Two zones that
    /// agree on all live clocks therefore become equal once every dead clock
    /// is reset to the canonical value — which is what lets the explorer's
    /// passed-list inclusion checks and hashes merge states that differ only
    /// in dead-clock valuations.  Preserves the canonical form.
    pub fn reset_to_canonical(&mut self, x: Clock) -> &mut Self {
        self.reset(x, 0)
    }

    /// Applies [`Dbm::reset_to_canonical`] to every clock whose entry in
    /// `active` is `false` (dead clocks), leaving active clocks untouched.
    ///
    /// `active` is indexed like the matrix (entry 0 is the reference clock and
    /// ignored); missing entries are conservatively treated as active.
    /// Returns the number of clocks that were canonicalized.  Preserves the
    /// canonical form and never empties a non-empty zone.
    pub fn restrict_to_active(&mut self, active: &[bool]) -> usize {
        if self.empty {
            return 0;
        }
        let mut eliminated = 0;
        for i in 1..self.dim {
            if !active.get(i).copied().unwrap_or(true) {
                self.reset_to_canonical(Clock(i as u32));
                eliminated += 1;
            }
        }
        eliminated
    }

    /// The convex hull (smallest zone containing both operands): the
    /// element-wise maximum of the two canonical matrices, which is again
    /// canonical (each triangle inequality holds in both operands, hence for
    /// the element-wise maximum).
    pub fn convex_hull(&self, other: &Dbm) -> Dbm {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        if self.empty {
            return other.clone();
        }
        if other.empty {
            return self.clone();
        }
        let mut hull = self.clone();
        for (h, o) in hull.m.iter_mut().zip(&other.m) {
            if *o > *h {
                *h = *o;
            }
        }
        hull
    }

    /// Splits `self \ other` into zones, one per facet of `other` that cuts
    /// into the remainder (the part beyond the facet), invoking `on_piece`
    /// for every non-empty piece.  Stops early — returning `false` — as soon
    /// as `on_piece` does, which lets [`Dbm::try_merge`] abort on the first
    /// uncovered piece.  Both operands must be non-empty and same-dimension.
    fn split_off_difference<F: FnMut(Dbm) -> bool>(&self, other: &Dbm, mut on_piece: F) -> bool {
        debug_assert!(!self.empty && !other.empty);
        let mut rem = self.clone();
        for i in 0..self.dim {
            for j in 0..self.dim {
                if i == j {
                    continue;
                }
                let facet = other.at(i, j);
                if facet.is_infinity() || rem.at(i, j) <= facet {
                    // The remainder already satisfies this facet (canonical
                    // bounds are tight), nothing to split off.
                    continue;
                }
                // The part of the remainder beyond the facet: ¬(xi − xj ≺ c)
                // is (xj − xi ≺' −c) with flipped strictness.
                let mut piece = rem.clone();
                piece.constrain(
                    Clock(j as u32),
                    Clock(i as u32),
                    Bound::new(-facet.constant(), !facet.is_strict()),
                );
                if !piece.is_empty() && !on_piece(piece) {
                    return false;
                }
                rem.constrain(Clock(i as u32), Clock(j as u32), facet);
                if rem.is_empty() {
                    return true;
                }
            }
        }
        // What is left of `rem` lies inside `other` and is discarded.
        true
    }

    /// The set difference `self \ other` as a list of (possibly overlapping-
    /// free, jointly exhaustive) zones: for every facet of `other` that cuts
    /// into the remainder, the part beyond the facet is split off.
    pub fn subtract(&self, other: &Dbm) -> Vec<Dbm> {
        if self.empty {
            return Vec::new();
        }
        if other.empty {
            return vec![self.clone()];
        }
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        let mut pieces = Vec::new();
        self.split_off_difference(other, |piece| {
            pieces.push(piece);
            true
        });
        pieces
    }

    /// Attempts the *exact* union of two zones: returns their convex hull iff
    /// the union is convex (`hull = self ∪ other`), `None` otherwise.
    ///
    /// Unlike UPPAAL's `-C` convex-hull over-approximation this never adds
    /// valuations, so replacing the two zones by the merged one preserves all
    /// verdicts and suprema exactly.  The exactness check is
    /// `hull \ self ⊆ other`, computed with [`Dbm::subtract`].
    pub fn try_merge(&self, other: &Dbm) -> Option<Dbm> {
        if self.empty {
            return Some(other.clone());
        }
        if other.empty {
            return Some(self.clone());
        }
        let hull = self.convex_hull(other);
        // Fused subtraction + coverage check with early exit: split off the
        // parts of the hull beyond each of `self`'s facets and require each
        // to lie inside `other`.  Most failing attempts abort on the first
        // piece, which keeps failed merges cheap on the explorer's hot path.
        if hull.split_off_difference(self, |piece| other.includes(&piece)) {
            Some(hull)
        } else {
            None
        }
    }

    /// Element-wise intersection of two zones over the same clocks.
    pub fn intersect(&mut self, other: &Dbm) -> &mut Self {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        if self.empty {
            return self;
        }
        if other.empty {
            self.empty = true;
            return self;
        }
        let mut changed = false;
        for i in 0..self.dim * self.dim {
            if other.m[i] < self.m[i] {
                self.m[i] = other.m[i];
                changed = true;
            }
        }
        if changed {
            self.close();
        }
        self
    }

    /// Compares two canonical zones.
    pub fn relation(&self, other: &Dbm) -> Relation {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        match (self.empty, other.empty) {
            (true, true) => return Relation::Equal,
            (true, false) => return Relation::Subset,
            (false, true) => return Relation::Superset,
            (false, false) => {}
        }
        let mut le = true; // self ⊆ other
        let mut ge = true; // self ⊇ other
        for i in 0..self.dim * self.dim {
            if self.m[i] > other.m[i] {
                le = false;
            }
            if self.m[i] < other.m[i] {
                ge = false;
            }
            if !le && !ge {
                return Relation::Incomparable;
            }
        }
        match (le, ge) {
            (true, true) => Relation::Equal,
            (true, false) => Relation::Subset,
            (false, true) => Relation::Superset,
            (false, false) => Relation::Incomparable,
        }
    }

    /// `true` iff this zone contains every valuation of `other`.
    pub fn includes(&self, other: &Dbm) -> bool {
        matches!(self.relation(other), Relation::Equal | Relation::Superset)
    }

    /// `true` iff the concrete valuation (indexed by clock, entry 0 ignored)
    /// lies inside the zone.
    pub fn contains_point(&self, valuation: &[i64]) -> bool {
        if self.empty {
            return false;
        }
        assert!(valuation.len() >= self.dim);
        for i in 0..self.dim {
            let vi = if i == 0 { 0 } else { valuation[i] };
            for (j, &vraw) in valuation.iter().enumerate().take(self.dim) {
                let vj = if j == 0 { 0 } else { vraw };
                if !self.at(i, j).admits(vi - vj) {
                    return false;
                }
            }
        }
        true
    }

    /// Classical maximum-bounds extrapolation (`ExtraM`): widens every bound
    /// that exceeds the maximal constant `max_bounds[i]` the clock is ever
    /// compared against.  `max_bounds[0]` is ignored; missing entries default
    /// to `0`.
    ///
    /// This abstraction is sound for timed automata whose guards and
    /// invariants contain no difference constraints (`x − y ≺ c`), which holds
    /// for every automaton produced by the architecture front-end.
    pub fn extrapolate_max_bounds(&mut self, max_bounds: &[i64]) -> &mut Self {
        if self.empty {
            return self;
        }
        let k = |i: usize| -> i64 { max_bounds.get(i).copied().unwrap_or(0) };
        let mut changed = false;
        for i in 0..self.dim {
            for j in 0..self.dim {
                if i == j {
                    continue;
                }
                let b = self.at(i, j);
                if i != 0 && b > Bound::weak(k(i)) && !b.is_infinity() {
                    *self.at_mut(i, j) = Bound::INFINITY;
                    changed = true;
                } else if !b.is_infinity() && b < Bound::strict(-k(j)) {
                    *self.at_mut(i, j) = Bound::strict(-k(j));
                    changed = true;
                }
            }
        }
        if changed {
            // Keep x0 row consistent: clocks stay non-negative.
            for j in 1..self.dim {
                let b = self.at(0, j).min(Bound::LE_ZERO);
                *self.at_mut(0, j) = b;
            }
            self.close();
        }
        self
    }

    /// Lower/upper-bounds extrapolation (`ExtraLU`): like
    /// [`Dbm::extrapolate_max_bounds`] but distinguishes the maximal constants
    /// used in lower bounds (`lower[i]`, guards of the form `x ≥ c` / `x > c`)
    /// from those used in upper bounds (`upper[i]`, `x ≤ c` / `x < c` and
    /// invariants).  Coarser than `ExtraM`, still sound for diagonal-free
    /// automata.
    pub fn extrapolate_lu(&mut self, lower: &[i64], upper: &[i64]) -> &mut Self {
        if self.empty {
            return self;
        }
        let l = |i: usize| -> i64 { lower.get(i).copied().unwrap_or(0) };
        let u = |i: usize| -> i64 { upper.get(i).copied().unwrap_or(0) };
        let mut changed = false;
        for i in 0..self.dim {
            for j in 0..self.dim {
                if i == j {
                    continue;
                }
                let b = self.at(i, j);
                if i != 0 && !b.is_infinity() && b > Bound::weak(l(i)) {
                    *self.at_mut(i, j) = Bound::INFINITY;
                    changed = true;
                } else if !b.is_infinity() && b < Bound::strict(-u(j)) {
                    *self.at_mut(i, j) = Bound::strict(-u(j));
                    changed = true;
                }
            }
        }
        if changed {
            for j in 1..self.dim {
                let b = self.at(0, j).min(Bound::LE_ZERO);
                *self.at_mut(0, j) = b;
            }
            self.close();
        }
        self
    }

    /// A stable 64-bit fingerprint of the canonical matrix, usable as a hash
    /// key for passed-list lookups.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

impl Hash for Dbm {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.empty.hash(state);
        if !self.empty {
            for b in &self.m {
                b.raw().hash(state);
            }
        }
    }
}

impl fmt::Debug for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            return write!(f, "Dbm(empty, {} clocks)", self.num_clocks());
        }
        writeln!(f, "Dbm({} clocks)", self.num_clocks())?;
        for i in 0..self.dim {
            write!(f, "  ")?;
            for j in 0..self.dim {
                write!(f, "{:>10} ", format!("{}", self.at(i, j)))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            return write!(f, "false");
        }
        let mut first = true;
        for i in 0..self.dim {
            for j in 0..self.dim {
                if i == j {
                    continue;
                }
                let b = self.at(i, j);
                if b.is_infinity() || (i == 0 && b == Bound::LE_ZERO) {
                    continue;
                }
                if !first {
                    write!(f, " ∧ ")?;
                }
                first = false;
                if j == 0 {
                    write!(f, "x{i} {b}")?;
                } else if i == 0 {
                    let op = if b.is_strict() { ">" } else { ">=" };
                    write!(f, "x{j} {op} {}", -b.constant())?;
                } else {
                    write!(f, "x{i}-x{j} {b}")?;
                }
            }
        }
        if first {
            write!(f, "true")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RelOp;

    fn x() -> Clock {
        Clock(1)
    }
    fn y() -> Clock {
        Clock(2)
    }

    #[test]
    fn zero_zone_is_origin() {
        let z = Dbm::zero(2);
        assert!(!z.is_empty());
        assert!(z.contains_point(&[0, 0, 0]));
        assert!(!z.contains_point(&[0, 1, 0]));
        assert_eq!(z.sup(x()), Bound::weak(0));
        assert_eq!(z.inf(x()), (0, false));
    }

    #[test]
    fn universe_contains_everything_nonnegative() {
        let u = Dbm::universe(2);
        assert!(u.contains_point(&[0, 0, 0]));
        assert!(u.contains_point(&[0, 1000, 3]));
        assert_eq!(u.sup(x()), Bound::INFINITY);
    }

    #[test]
    fn up_allows_uniform_delay() {
        let mut z = Dbm::zero(2);
        z.up();
        assert!(z.contains_point(&[0, 5, 5]));
        assert!(!z.contains_point(&[0, 5, 4])); // clocks drift together
        assert_eq!(z.sup(x()), Bound::INFINITY);
        assert_eq!(z.get(x(), y()), Bound::weak(0));
    }

    #[test]
    fn constrain_and_emptiness() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(x(), Clock::REF, Bound::weak(10)); // x <= 10
        z.constrain(Clock::REF, x(), Bound::weak(-4)); // x >= 4
        assert!(!z.is_empty());
        assert!(z.contains_point(&[0, 4, 4]));
        assert!(z.contains_point(&[0, 10, 10]));
        assert!(!z.contains_point(&[0, 3, 3]));
        // Now make it empty: x < 4
        z.constrain(x(), Clock::REF, Bound::strict(4));
        assert!(z.is_empty());
    }

    #[test]
    fn constrain_is_idempotent_for_weaker_bounds() {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain(Clock(1), Clock::REF, Bound::weak(5));
        let snapshot = z.clone();
        z.constrain(Clock(1), Clock::REF, Bound::weak(9)); // weaker, no effect
        assert_eq!(z, snapshot);
    }

    #[test]
    fn reset_pins_single_clock() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(x(), Clock::REF, Bound::weak(10));
        z.reset(y(), 0);
        // Now y = 0, x in [0, 10], and x - y = x.
        assert!(z.contains_point(&[0, 7, 0]));
        assert!(!z.contains_point(&[0, 7, 1]));
        assert_eq!(z.sup(y()), Bound::weak(0));
        assert_eq!(z.get(x(), y()), Bound::weak(10));
    }

    #[test]
    fn reset_to_nonzero_value() {
        let mut z = Dbm::zero(1);
        z.up();
        z.reset(Clock(1), 5);
        assert!(z.contains_point(&[0, 5]));
        assert!(!z.contains_point(&[0, 4]));
        assert_eq!(z.sup(Clock(1)), Bound::weak(5));
        assert_eq!(z.inf(Clock(1)), (5, false));
    }

    #[test]
    fn free_removes_constraints() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(x(), Clock::REF, Bound::weak(3));
        z.free(x());
        assert!(z.contains_point(&[0, 100, 2]));
        assert!(z.contains_point(&[0, 0, 2]));
        // y still bounded by x's old constraint? y was only bounded via x <= 3 and x == y
        assert!(z.contains_point(&[0, 50, 3]));
        assert!(!z.contains_point(&[0, 50, 4]));
    }

    #[test]
    fn copy_clock_equates_clocks() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(y(), Clock::REF, Bound::weak(4));
        z.copy_clock(x(), y());
        assert!(z.contains_point(&[0, 2, 2]));
        assert!(!z.contains_point(&[0, 2, 3]));
        assert_eq!(z.sup(x()), Bound::weak(4));
    }

    #[test]
    fn shift_moves_clock() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(x(), Clock::REF, Bound::weak(3));
        z.shift(x(), 10);
        assert!(z.contains_point(&[0, 10, 0]));
        assert!(z.contains_point(&[0, 13, 3]));
        assert!(!z.contains_point(&[0, 9, 0]));
        assert_eq!(z.sup(x()), Bound::weak(13));
    }

    #[test]
    fn down_computes_past() {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain(Clock::REF, Clock(1), Bound::weak(-5)); // x >= 5
        z.down();
        // Every valuation with x <= anything can delay into x >= 5, so past is x >= 0.
        assert!(z.contains_point(&[0, 0]));
        assert!(z.contains_point(&[0, 7]));
    }

    #[test]
    fn relation_detects_subset() {
        let mut big = Dbm::zero(1);
        big.up();
        big.constrain(Clock(1), Clock::REF, Bound::weak(10));
        let mut small = Dbm::zero(1);
        small.up();
        small.constrain(Clock(1), Clock::REF, Bound::weak(5));
        assert_eq!(small.relation(&big), Relation::Subset);
        assert_eq!(big.relation(&small), Relation::Superset);
        assert_eq!(big.relation(&big.clone()), Relation::Equal);
        assert!(big.includes(&small));
        assert!(!small.includes(&big));
    }

    #[test]
    fn relation_incomparable() {
        let mut a = Dbm::zero(1);
        a.up();
        a.constrain(Clock(1), Clock::REF, Bound::weak(5)); // x in [0,5]
        let mut b = Dbm::zero(1);
        b.up();
        b.constrain(Clock::REF, Clock(1), Bound::weak(-3)); // x >= 3
        assert_eq!(a.relation(&b), Relation::Incomparable);
    }

    #[test]
    fn empty_zone_relations() {
        let e = Dbm::empty(1);
        let z = Dbm::zero(1);
        assert_eq!(e.relation(&z), Relation::Subset);
        assert_eq!(z.relation(&e), Relation::Superset);
        assert_eq!(e.relation(&Dbm::empty(1)), Relation::Equal);
        assert!(z.includes(&e));
    }

    #[test]
    fn intersect_zones() {
        let mut a = Dbm::zero(1);
        a.up();
        a.constrain(Clock(1), Clock::REF, Bound::weak(5));
        let mut b = Dbm::zero(1);
        b.up();
        b.constrain(Clock::REF, Clock(1), Bound::weak(-3));
        a.intersect(&b);
        assert!(a.contains_point(&[0, 3]));
        assert!(a.contains_point(&[0, 5]));
        assert!(!a.contains_point(&[0, 2]));
        assert!(!a.contains_point(&[0, 6]));

        let mut c = Dbm::zero(1);
        c.up();
        c.constrain(Clock(1), Clock::REF, Bound::strict(3)); // x < 3
        a.intersect(&c);
        assert!(a.is_empty());
    }

    #[test]
    fn satisfies_and_implies() {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain(Clock(1), Clock::REF, Bound::weak(5)); // x in [0,5]
        let le_10 = Constraint::upper(Clock(1), Bound::weak(10));
        let ge_3 = Constraint::lower(Clock(1), 3, false);
        let ge_7 = Constraint::lower(Clock(1), 7, false);
        assert!(z.satisfies(&le_10));
        assert!(z.implies(&le_10));
        assert!(z.satisfies(&ge_3));
        assert!(!z.implies(&ge_3));
        assert!(!z.satisfies(&ge_7));
    }

    #[test]
    fn extrapolation_widens_large_bounds() {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain(Clock(1), Clock::REF, Bound::weak(1_000));
        z.constrain(Clock::REF, Clock(1), Bound::weak(-900)); // x in [900, 1000]
        let mut e = z.clone();
        e.extrapolate_max_bounds(&[0, 10]); // max constant for x is 10
        // After extrapolation the zone must include the original zone.
        assert!(e.includes(&z));
        // And bounds beyond the max constant are gone.
        assert_eq!(e.sup(Clock(1)), Bound::INFINITY);
    }

    #[test]
    fn extrapolation_preserves_small_zones() {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain(Clock(1), Clock::REF, Bound::weak(5));
        let orig = z.clone();
        z.extrapolate_max_bounds(&[0, 10]);
        assert_eq!(z.relation(&orig), Relation::Equal);
    }

    #[test]
    fn lu_extrapolation_is_coarser_or_equal_to_m() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(Clock(1), Clock::REF, Bound::weak(800));
        z.constrain(Clock::REF, Clock(2), Bound::weak(-300));
        let mut m = z.clone();
        m.extrapolate_max_bounds(&[0, 10, 10]);
        let mut lu = z.clone();
        lu.extrapolate_lu(&[0, 10, 10], &[0, 10, 10]);
        // With equal L and U they coincide with ExtraM here.
        assert!(lu.includes(&z));
        assert!(m.includes(&z));
    }

    #[test]
    fn close_detects_negative_cycle() {
        let mut z = Dbm::universe(1);
        z.set_raw(Clock(1), Clock::REF, Bound::weak(2)); // x <= 2
        z.set_raw(Clock::REF, Clock(1), Bound::weak(-5)); // x >= 5
        z.close();
        assert!(z.is_empty());
    }

    #[test]
    fn fingerprint_stable_for_equal_zones() {
        let mut a = Dbm::zero(2);
        a.up();
        a.constrain(x(), Clock::REF, Bound::weak(5));
        let mut b = Dbm::zero(2);
        b.up();
        b.constrain(x(), Clock::REF, Bound::weak(5));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn from_rel_roundtrip_through_zone() {
        let mut z = Dbm::universe(2);
        for c in Constraint::from_rel(x(), Clock::REF, RelOp::Eq, 4) {
            z.and(&c);
        }
        assert!(z.contains_point(&[0, 4, 9]));
        assert!(!z.contains_point(&[0, 5, 9]));
    }

    #[test]
    fn reset_to_canonical_pins_dead_clock_to_zero() {
        let mut a = Dbm::zero(2);
        a.up();
        a.constrain(x(), Clock::REF, Bound::weak(5)); // x in [0, 5]
        a.reset(y(), 1);
        let mut b = Dbm::zero(2);
        b.up();
        b.constrain(x(), Clock::REF, Bound::weak(5));
        b.reset(y(), 3); // same x projection, y pinned differently
        assert!(a != b);
        a.reset_to_canonical(y());
        b.reset_to_canonical(y());
        // The zones agreed on the live clock x, so canonicalizing the dead
        // clock y makes them identical (same fingerprint for the passed list).
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.sup(y()), Bound::weak(0));
        assert_eq!(a.inf(y()), (0, false));
        // x's own bounds were untouched.
        assert_eq!(a.sup(x()), Bound::weak(5));
    }

    #[test]
    fn free_clock_is_projection() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(x(), Clock::REF, Bound::weak(3));
        z.free_clock(x());
        assert!(z.contains_point(&[0, 100, 2]));
        assert_eq!(z.sup(x()), Bound::INFINITY);
        // Canonical: re-closing changes nothing.
        let mut c = z.clone();
        c.close();
        assert_eq!(c.relation(&z), Relation::Equal);
    }

    #[test]
    fn restrict_to_active_canonicalizes_exactly_the_dead_clocks() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(x(), Clock::REF, Bound::weak(7));
        z.constrain(Clock::REF, y(), Bound::weak(-4));
        let live_sup = z.sup(x());
        // Entry 0 is the reference clock; x stays active, y is dead.
        let n = z.restrict_to_active(&[true, true, false]);
        assert_eq!(n, 1);
        assert_eq!(z.sup(x()), live_sup);
        assert_eq!(z.sup(y()), Bound::weak(0));
        // Missing entries are treated as active: nothing changes.
        let snapshot = z.clone();
        assert_eq!(z.restrict_to_active(&[true]), 0);
        assert_eq!(z, snapshot);
        // Idempotent.
        assert_eq!(z.restrict_to_active(&[true, true, false]), 1);
        assert_eq!(z, snapshot);
        // No-op on the empty zone.
        let mut e = Dbm::empty(2);
        assert_eq!(e.restrict_to_active(&[true, false, false]), 0);
        assert!(e.is_empty());
    }

    fn interval(lo: i64, hi: i64) -> Dbm {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain(Clock(1), Clock::REF, Bound::weak(hi));
        z.constrain(Clock::REF, Clock(1), Bound::weak(-lo));
        z
    }

    #[test]
    fn convex_hull_is_elementwise_max() {
        let a = interval(0, 2);
        let b = interval(5, 7);
        let h = a.convex_hull(&b);
        assert!(h.includes(&a) && h.includes(&b));
        assert!(h.contains_point(&[0, 3])); // the gap is filled
        // Hull with an empty zone is the other operand.
        assert_eq!(Dbm::empty(1).convex_hull(&a), a);
        assert_eq!(a.convex_hull(&Dbm::empty(1)), a);
        // Canonical: re-closing changes nothing.
        let mut c = h.clone();
        c.close();
        assert_eq!(c.relation(&h), Relation::Equal);
    }

    #[test]
    fn subtract_splits_off_the_right_pieces() {
        let z = interval(0, 10);
        let pieces = z.subtract(&interval(3, 5));
        assert!(!pieces.is_empty());
        let covered = |v: i64| pieces.iter().any(|p| p.contains_point(&[0, v]));
        assert!(covered(0) && covered(2) && covered(6) && covered(10));
        assert!(!covered(3) && !covered(4) && !covered(5));
        // Subtracting a superset leaves nothing.
        assert!(z.subtract(&interval(0, 20)).is_empty());
        // Subtracting the empty zone leaves the zone itself.
        let all = z.subtract(&Dbm::empty(1));
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].relation(&z), Relation::Equal);
    }

    #[test]
    fn try_merge_accepts_exactly_the_convex_unions() {
        // Overlapping intervals: union convex.
        let m = interval(0, 5).try_merge(&interval(3, 8)).expect("convex");
        assert_eq!(m.relation(&interval(0, 8)), Relation::Equal);
        // Adjacent intervals: union convex.
        assert!(interval(0, 5).try_merge(&interval(5, 8)).is_some());
        // Disjoint intervals with a gap: hull adds points, no merge.
        assert!(interval(0, 2).try_merge(&interval(5, 7)).is_none());
        // Two diagonal unit squares: hull adds the off-diagonal corners.
        let square = |lo: i64| {
            let mut z = Dbm::zero(2);
            z.up();
            z.constrain(x(), Clock::REF, Bound::weak(lo + 1));
            z.constrain(Clock::REF, x(), Bound::weak(-lo));
            z.free(y());
            z.constrain(y(), Clock::REF, Bound::weak(lo + 1));
            z.constrain(Clock::REF, y(), Bound::weak(-lo));
            z
        };
        assert!(square(0).try_merge(&square(2)).is_none());
        // A zone merges with itself and with any subset.
        let z = interval(2, 9);
        assert_eq!(z.try_merge(&z).unwrap().relation(&z), Relation::Equal);
        assert_eq!(z.try_merge(&interval(3, 5)).unwrap().relation(&z), Relation::Equal);
    }

    #[test]
    fn operations_on_empty_zone_are_noops() {
        let mut e = Dbm::empty(2);
        e.up();
        e.reset(x(), 3);
        e.free(y());
        e.constrain(x(), Clock::REF, Bound::weak(5));
        assert!(e.is_empty());
        assert!(!e.contains_point(&[0, 0, 0]));
    }
}
