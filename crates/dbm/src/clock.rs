//! Clock indices and clock sets.

use std::fmt;

/// Index of a clock in a DBM.
///
/// `Clock(0)` is the *reference clock* that is constantly zero; real clocks
/// are `Clock(1) … Clock(n)` for a DBM of dimension `n + 1`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Clock(pub u32);

impl Clock {
    /// The reference clock `x_0 ≡ 0`.
    pub const REF: Clock = Clock(0);

    /// Returns the index as a `usize` for matrix addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// `true` iff this is the reference clock.
    #[inline]
    pub fn is_reference(self) -> bool {
        self.0 == 0
    }
}

impl From<u32> for Clock {
    fn from(i: u32) -> Self {
        Clock(i)
    }
}

impl fmt::Debug for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_reference() {
            write!(f, "x0")
        } else {
            write!(f, "x{}", self.0)
        }
    }
}

impl fmt::Display for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A small set of clocks, used for multi-clock resets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClockSet {
    bits: Vec<u64>,
}

impl ClockSet {
    /// Creates an empty clock set able to hold clocks `0..=max_clock`.
    pub fn new(num_clocks: usize) -> Self {
        ClockSet {
            bits: vec![0; num_clocks / 64 + 1],
        }
    }

    /// Inserts a clock.
    pub fn insert(&mut self, c: Clock) {
        let i = c.index();
        if i / 64 >= self.bits.len() {
            self.bits.resize(i / 64 + 1, 0);
        }
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Removes a clock.
    pub fn remove(&mut self, c: Clock) {
        let i = c.index();
        if i / 64 < self.bits.len() {
            self.bits[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Membership test.
    pub fn contains(&self, c: Clock) -> bool {
        let i = c.index();
        i / 64 < self.bits.len() && self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// `true` iff no clock is in the set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Number of clocks in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the member clocks in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = Clock> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits & (1 << b) != 0)
                .map(move |b| Clock((w * 64 + b) as u32))
        })
    }
}

impl FromIterator<Clock> for ClockSet {
    fn from_iter<T: IntoIterator<Item = Clock>>(iter: T) -> Self {
        let mut set = ClockSet::new(0);
        for c in iter {
            set.insert(c);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_clock() {
        assert!(Clock::REF.is_reference());
        assert!(!Clock(3).is_reference());
        assert_eq!(Clock(3).index(), 3);
        assert_eq!(Clock::from(7), Clock(7));
    }

    #[test]
    fn clock_set_basic() {
        let mut s = ClockSet::new(4);
        assert!(s.is_empty());
        s.insert(Clock(1));
        s.insert(Clock(3));
        s.insert(Clock(70)); // forces growth
        assert!(s.contains(Clock(1)));
        assert!(!s.contains(Clock(2)));
        assert!(s.contains(Clock(70)));
        assert_eq!(s.len(), 3);
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, vec![Clock(1), Clock(3), Clock(70)]);
        s.remove(Clock(1));
        assert!(!s.contains(Clock(1)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn clock_set_from_iter() {
        let s: ClockSet = [Clock(2), Clock(5)].into_iter().collect();
        assert!(s.contains(Clock(2)));
        assert!(s.contains(Clock(5)));
        assert_eq!(s.len(), 2);
    }
}
