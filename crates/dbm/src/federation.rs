//! Federations: finite unions of DBM zones over the same clocks.
//!
//! The forward reachability algorithm itself only needs single zones, but
//! federations are convenient for representing target sets of queries, for the
//! passed-list per discrete state, and in tests.

use crate::{Clock, Constraint, Dbm, Relation};
use std::fmt;

/// A finite union of zones (possibly empty) over the same set of clocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Federation {
    num_clocks: usize,
    zones: Vec<Dbm>,
}

impl Federation {
    /// The empty federation (no valuations).
    pub fn empty(num_clocks: usize) -> Federation {
        Federation {
            num_clocks,
            zones: Vec::new(),
        }
    }

    /// A federation containing a single zone.
    pub fn from_zone(zone: Dbm) -> Federation {
        let num_clocks = zone.num_clocks();
        let mut f = Federation::empty(num_clocks);
        f.add(zone);
        f
    }

    /// The federation of all non-negative valuations.
    pub fn universe(num_clocks: usize) -> Federation {
        Federation::from_zone(Dbm::universe(num_clocks))
    }

    /// Number of real clocks.
    pub fn num_clocks(&self) -> usize {
        self.num_clocks
    }

    /// Number of zones currently stored (after inclusion reduction).
    pub fn size(&self) -> usize {
        self.zones.len()
    }

    /// `true` iff the federation contains no valuation.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Iterates over the member zones.
    pub fn iter(&self) -> impl Iterator<Item = &Dbm> {
        self.zones.iter()
    }

    /// Adds a zone, discarding it if it is empty or already included in a
    /// stored zone, and removing stored zones that it subsumes.
    ///
    /// Returns `true` if the federation grew (the zone was not subsumed).
    pub fn add(&mut self, zone: Dbm) -> bool {
        if zone.is_empty() {
            return false;
        }
        assert_eq!(zone.num_clocks(), self.num_clocks, "dimension mismatch");
        for existing in &self.zones {
            match zone.relation(existing) {
                Relation::Equal | Relation::Subset => return false,
                _ => {}
            }
        }
        self.zones
            .retain(|existing| !matches!(existing.relation(&zone), Relation::Subset));
        self.zones.push(zone);
        true
    }

    /// `true` iff the valuation is contained in some member zone.
    pub fn contains_point(&self, valuation: &[i64]) -> bool {
        self.zones.iter().any(|z| z.contains_point(valuation))
    }

    /// `true` iff the given zone is included in some single member zone.
    ///
    /// This is the (incomplete but sound) inclusion test used by zone-based
    /// passed lists: a zone already covered by one stored zone need not be
    /// explored again.
    pub fn includes_zone(&self, zone: &Dbm) -> bool {
        self.zones.iter().any(|z| z.includes(zone))
    }

    /// Intersects every member zone with a constraint, dropping emptied zones.
    pub fn constrain(&mut self, c: &Constraint) -> &mut Self {
        for z in &mut self.zones {
            z.and(c);
        }
        self.zones.retain(|z| !z.is_empty());
        self
    }

    /// Applies the delay operator to every member zone.
    pub fn up(&mut self) -> &mut Self {
        for z in &mut self.zones {
            z.up();
        }
        self
    }

    /// Resets a clock in every member zone.
    pub fn reset(&mut self, x: Clock, value: i64) -> &mut Self {
        for z in &mut self.zones {
            z.reset(x, value);
        }
        self
    }

    /// Union with another federation.
    pub fn union(&mut self, other: &Federation) -> &mut Self {
        for z in &other.zones {
            self.add(z.clone());
        }
        self
    }

    /// The tightest upper bound of a clock across all member zones
    /// (`∞`-aware); `None` if the federation is empty.
    pub fn sup(&self, x: Clock) -> Option<crate::Bound> {
        self.zones
            .iter()
            .map(|z| z.sup(x))
            .max_by(|a, b| a.cmp(b))
    }
}

impl fmt::Display for Federation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.zones.is_empty() {
            return write!(f, "false");
        }
        for (i, z) in self.zones.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "({z})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bound;

    fn zone_between(lo: i64, hi: i64) -> Dbm {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain(Clock(1), Clock::REF, Bound::weak(hi));
        z.constrain(Clock::REF, Clock(1), Bound::weak(-lo));
        z
    }

    #[test]
    fn empty_federation() {
        let f = Federation::empty(1);
        assert!(f.is_empty());
        assert_eq!(f.size(), 0);
        assert!(!f.contains_point(&[0, 0]));
        assert_eq!(f.sup(Clock(1)), None);
    }

    #[test]
    fn add_subsumed_zone_is_rejected() {
        let mut f = Federation::from_zone(zone_between(0, 10));
        assert!(!f.add(zone_between(2, 5)));
        assert_eq!(f.size(), 1);
        // But a zone subsuming the existing one replaces it.
        assert!(f.add(zone_between(0, 20)));
        assert_eq!(f.size(), 1);
        assert!(f.contains_point(&[0, 15]));
    }

    #[test]
    fn disjoint_zones_coexist() {
        let mut f = Federation::empty(1);
        f.add(zone_between(0, 2));
        f.add(zone_between(5, 7));
        assert_eq!(f.size(), 2);
        assert!(f.contains_point(&[0, 1]));
        assert!(!f.contains_point(&[0, 3]));
        assert!(f.contains_point(&[0, 6]));
        assert_eq!(f.sup(Clock(1)), Some(Bound::weak(7)));
    }

    #[test]
    fn includes_zone_is_per_member() {
        let mut f = Federation::empty(1);
        f.add(zone_between(0, 2));
        f.add(zone_between(5, 7));
        assert!(f.includes_zone(&zone_between(1, 2)));
        // The union covers [0,2] ∪ [5,7] but no single zone covers [1,6].
        assert!(!f.includes_zone(&zone_between(1, 6)));
    }

    #[test]
    fn constrain_drops_emptied_members() {
        let mut f = Federation::empty(1);
        f.add(zone_between(0, 2));
        f.add(zone_between(5, 7));
        f.constrain(&Constraint::upper(Clock(1), Bound::weak(3)));
        assert_eq!(f.size(), 1);
        assert!(f.contains_point(&[0, 1]));
        assert!(!f.contains_point(&[0, 6]));
    }

    #[test]
    fn union_and_up() {
        let mut f = Federation::from_zone(zone_between(0, 1));
        let g = Federation::from_zone(zone_between(10, 11));
        f.union(&g);
        assert_eq!(f.size(), 2);
        f.up();
        assert!(f.contains_point(&[0, 100]));
    }

    #[test]
    fn reset_applies_to_all_members() {
        let mut f = Federation::empty(1);
        f.add(zone_between(0, 2));
        f.add(zone_between(5, 7));
        f.reset(Clock(1), 0);
        assert!(f.contains_point(&[0, 0]));
        assert!(!f.contains_point(&[0, 6]));
    }

    #[test]
    fn empty_zone_not_added() {
        let mut f = Federation::empty(1);
        assert!(!f.add(Dbm::empty(1)));
        assert!(f.is_empty());
    }
}
