//! Federations: finite unions of DBM zones over the same clocks.
//!
//! The forward reachability algorithm itself only needs single zones, but
//! federations are convenient for representing target sets of queries, for the
//! passed-list per discrete state, and in tests.

use crate::{Clock, Constraint, Dbm, Relation};
use std::fmt;

/// How a candidate zone is covered by a federation, see
/// [`Federation::coverage_of`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZoneCoverage {
    /// The zone contains valuations outside the federation.
    NotCovered,
    /// A single member zone includes the candidate (the cheap test convex
    /// passed lists already perform).
    Member,
    /// No single member includes the candidate, but the *union* of the
    /// members does — the case only federation storage can detect.
    Union,
}

/// A finite union of zones (possibly empty) over the same set of clocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Federation {
    num_clocks: usize,
    zones: Vec<Dbm>,
}

impl Federation {
    /// The empty federation (no valuations).
    pub fn empty(num_clocks: usize) -> Federation {
        Federation {
            num_clocks,
            zones: Vec::new(),
        }
    }

    /// A federation containing a single zone.
    pub fn from_zone(zone: Dbm) -> Federation {
        let num_clocks = zone.num_clocks();
        let mut f = Federation::empty(num_clocks);
        f.add(zone);
        f
    }

    /// The federation of all non-negative valuations.
    pub fn universe(num_clocks: usize) -> Federation {
        Federation::from_zone(Dbm::universe(num_clocks))
    }

    /// Number of real clocks.
    pub fn num_clocks(&self) -> usize {
        self.num_clocks
    }

    /// Number of zones currently stored (after inclusion reduction).
    pub fn size(&self) -> usize {
        self.zones.len()
    }

    /// `true` iff the federation contains no valuation.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Iterates over the member zones.
    pub fn iter(&self) -> impl Iterator<Item = &Dbm> {
        self.zones.iter()
    }

    /// Adds a zone, discarding it if it is empty or already included in a
    /// stored zone, and removing stored zones that it subsumes.
    ///
    /// Returns `true` if the federation grew (the zone was not subsumed).
    pub fn add(&mut self, zone: Dbm) -> bool {
        if zone.is_empty() {
            return false;
        }
        assert_eq!(zone.num_clocks(), self.num_clocks, "dimension mismatch");
        // One relation per member decides both directions: reject the
        // newcomer if some member includes it, evict the members it
        // strictly includes.
        let mut evict = Vec::new();
        for (i, existing) in self.zones.iter().enumerate() {
            match zone.relation(existing) {
                Relation::Equal | Relation::Subset => return false,
                Relation::Superset => evict.push(i),
                Relation::Incomparable => {}
            }
        }
        for &i in evict.iter().rev() {
            self.zones.remove(i);
        }
        self.zones.push(zone);
        true
    }

    /// `true` iff the valuation is contained in some member zone.
    pub fn contains_point(&self, valuation: &[i64]) -> bool {
        self.zones.iter().any(|z| z.contains_point(valuation))
    }

    /// Pieces remaining when the members of this federation are successively
    /// subtracted from `zone`; stops (returning the non-empty rest) as soon
    /// as the piece count exceeds `piece_cap`, which keeps the worst case of
    /// the coverage test bounded on hot paths.  An empty result means `zone`
    /// is covered by the union of the members.
    fn remainder_of(&self, zone: &Dbm, piece_cap: usize) -> Vec<Dbm> {
        // Members that certainly miss the candidate cannot remove anything
        // from its pieces (every piece is a subset of the candidate) — drop
        // them before they cost one subtraction per piece.
        let relevant: Vec<&Dbm> = self
            .zones
            .iter()
            .filter(|member| !zone.surely_disjoint(member))
            .collect();
        // Necessary condition with no subtraction at all: the union of the
        // relevant members lies inside their convex hull, so a candidate
        // poking out of the hull is certainly not covered.  Most failing
        // coverage queries on the passed-list hot path exit here.
        match relevant.as_slice() {
            [] => return vec![zone.clone()],
            [one] => {
                if !one.includes(zone) {
                    return vec![zone.clone()];
                }
            }
            [first, rest @ ..] => {
                let mut hull = (*first).clone();
                for member in rest {
                    hull.hull_in_place(member);
                }
                if !hull.includes(zone) {
                    return vec![zone.clone()];
                }
            }
        }
        let mut remainder = vec![zone.clone()];
        for member in relevant {
            let mut next = Vec::new();
            for piece in remainder {
                // Pieces the member certainly misses survive unchanged; move
                // them instead of routing through a subtraction (which would
                // clone).  This re-check is not redundant with the `relevant`
                // filter above: pieces shrink as members are subtracted, so a
                // member overlapping the candidate can still miss most of its
                // surviving pieces.
                if piece.surely_disjoint(member) {
                    next.push(piece);
                } else {
                    piece.split_off_difference(member, |p| {
                        next.push(p);
                        true
                    });
                }
                // Consult the cap per piece, not per member: one member pass
                // can multiply the piece count by O(dim²), and the cap exists
                // to bound exactly that hot-path blow-up.
                if next.len() > piece_cap {
                    return next;
                }
            }
            remainder = next;
            if remainder.is_empty() {
                break;
            }
        }
        remainder
    }

    /// Classifies how `zone` is covered by the federation: by a single member
    /// zone (the cheap convex test), only by the *union* of the members
    /// (detected with zone subtraction), or not at all.
    ///
    /// The union test is exact up to an internal piece budget: coverage by
    /// very fragmented unions may conservatively be reported as
    /// [`ZoneCoverage::NotCovered`], which is sound for passed-list use (the
    /// zone is then explored rather than discarded).  The empty zone is
    /// covered by any federation.
    pub fn coverage_of(&self, zone: &Dbm) -> ZoneCoverage {
        if zone.is_empty() {
            return ZoneCoverage::Member;
        }
        // Fast path: any single member includes the candidate.
        if self.zones.iter().any(|z| z.includes(zone)) {
            return ZoneCoverage::Member;
        }
        if self.zones.len() < 2 {
            return ZoneCoverage::NotCovered;
        }
        const PIECE_CAP: usize = 512;
        if self.remainder_of(zone, PIECE_CAP).is_empty() {
            ZoneCoverage::Union
        } else {
            ZoneCoverage::NotCovered
        }
    }

    /// `true` iff the given zone is included in the **union** of the member
    /// zones (not necessarily in any single one), computed by subtracting the
    /// members from the candidate, with the any-single-member inclusion test
    /// as a fast path.
    ///
    /// This is the coverage test behind federation-based passed lists: a zone
    /// covered by the union of the stored zones need not be explored again,
    /// which convex single-zone storage can never detect.
    pub fn includes_zone(&self, zone: &Dbm) -> bool {
        !matches!(self.coverage_of(zone), ZoneCoverage::NotCovered)
    }

    /// The set difference `federation \ zone` as a new federation: every
    /// member is split around `zone` and the non-empty pieces are collected
    /// (with the usual inclusion reduction of [`Federation::add`]).
    pub fn subtract_zone(&self, zone: &Dbm) -> Federation {
        let mut out = Federation::empty(self.num_clocks);
        if zone.is_empty() {
            for z in &self.zones {
                out.add(z.clone());
            }
            return out;
        }
        for z in &self.zones {
            for piece in z.subtract(zone) {
                out.add(piece);
            }
        }
        out
    }

    /// Drops every member zone that is covered by the union of the *other*
    /// members (one pass, oldest member first) and returns the number of
    /// zones dropped.  The denoted set is preserved exactly: a zone is only removed
    /// when the remaining members still cover it, so the reduced federation
    /// describes the same valuations with fewer (never more) zones.
    pub fn reduce(&mut self) -> usize {
        let mut dropped = 0;
        let mut i = 0;
        while i < self.zones.len() {
            if self.zones.len() < 2 {
                break;
            }
            let candidate = self.zones.remove(i);
            if matches!(self.coverage_of(&candidate), ZoneCoverage::NotCovered) {
                self.zones.insert(i, candidate);
                i += 1;
            } else {
                dropped += 1;
            }
        }
        dropped
    }

    /// Merges `zone` with every member it forms an *exact* convex union with
    /// ([`Dbm::try_merge`], newest-first, with a budget of `failure_budget`
    /// failed attempts refreshed on every success so cascades complete),
    /// removing the absorbed members and growing `zone` to the common hull.
    /// Returns the number of members absorbed; the caller is expected to
    /// [`Federation::add`] the final `zone` afterwards.
    pub fn absorb_convex(&mut self, zone: &mut Dbm, failure_budget: usize) -> usize {
        let mut absorbed = 0;
        let mut budget = failure_budget;
        let mut i = self.zones.len();
        while i > 0 && budget > 0 {
            i -= 1;
            if let Some(hull) = zone.try_merge(&self.zones[i]) {
                *zone = hull;
                self.zones.swap_remove(i);
                absorbed += 1;
                budget = failure_budget;
                i = self.zones.len();
            } else {
                budget -= 1;
            }
        }
        absorbed
    }


    /// Intersects every member zone with a constraint, dropping emptied zones.
    pub fn constrain(&mut self, c: &Constraint) -> &mut Self {
        for z in &mut self.zones {
            z.and(c);
        }
        self.zones.retain(|z| !z.is_empty());
        self
    }

    /// Applies the delay operator to every member zone.
    pub fn up(&mut self) -> &mut Self {
        for z in &mut self.zones {
            z.up();
        }
        self
    }

    /// Resets a clock in every member zone.
    pub fn reset(&mut self, x: Clock, value: i64) -> &mut Self {
        for z in &mut self.zones {
            z.reset(x, value);
        }
        self
    }

    /// Union with another federation.
    pub fn union(&mut self, other: &Federation) -> &mut Self {
        for z in &other.zones {
            self.add(z.clone());
        }
        self
    }

    /// The tightest upper bound of a clock across all member zones
    /// (`∞`-aware); `None` if the federation is empty.
    pub fn sup(&self, x: Clock) -> Option<crate::Bound> {
        self.zones
            .iter()
            .map(|z| z.sup(x))
            .max_by(|a, b| a.cmp(b))
    }
}

impl fmt::Display for Federation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.zones.is_empty() {
            return write!(f, "false");
        }
        for (i, z) in self.zones.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "({z})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bound;

    fn zone_between(lo: i64, hi: i64) -> Dbm {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain(Clock(1), Clock::REF, Bound::weak(hi));
        z.constrain(Clock::REF, Clock(1), Bound::weak(-lo));
        z
    }

    #[test]
    fn empty_federation() {
        let f = Federation::empty(1);
        assert!(f.is_empty());
        assert_eq!(f.size(), 0);
        assert!(!f.contains_point(&[0, 0]));
        assert_eq!(f.sup(Clock(1)), None);
    }

    #[test]
    fn add_subsumed_zone_is_rejected() {
        let mut f = Federation::from_zone(zone_between(0, 10));
        assert!(!f.add(zone_between(2, 5)));
        assert_eq!(f.size(), 1);
        // But a zone subsuming the existing one replaces it.
        assert!(f.add(zone_between(0, 20)));
        assert_eq!(f.size(), 1);
        assert!(f.contains_point(&[0, 15]));
    }

    #[test]
    fn disjoint_zones_coexist() {
        let mut f = Federation::empty(1);
        f.add(zone_between(0, 2));
        f.add(zone_between(5, 7));
        assert_eq!(f.size(), 2);
        assert!(f.contains_point(&[0, 1]));
        assert!(!f.contains_point(&[0, 3]));
        assert!(f.contains_point(&[0, 6]));
        assert_eq!(f.sup(Clock(1)), Some(Bound::weak(7)));
    }

    #[test]
    fn includes_zone_distinguishes_member_union_and_uncovered() {
        use crate::ZoneCoverage;
        let mut f = Federation::empty(1);
        f.add(zone_between(0, 2));
        f.add(zone_between(5, 7));
        // Covered by a single member: the fast path.
        assert_eq!(f.coverage_of(&zone_between(1, 2)), ZoneCoverage::Member);
        assert!(f.includes_zone(&zone_between(1, 2)));
        // [1,6] pokes into the gap (2,5): not covered even by the union.
        assert_eq!(f.coverage_of(&zone_between(1, 6)), ZoneCoverage::NotCovered);
        assert!(!f.includes_zone(&zone_between(1, 6)));
        // Overlapping members [0,4] ∪ [3,7]: [1,6] is covered only by the
        // union — the case convex single-zone subsumption can never detect.
        let mut g = Federation::empty(1);
        g.add(zone_between(0, 4));
        g.add(zone_between(3, 7));
        assert_eq!(g.coverage_of(&zone_between(1, 6)), ZoneCoverage::Union);
        assert!(g.includes_zone(&zone_between(1, 6)));
        // The empty zone is covered by anything.
        assert!(g.includes_zone(&Dbm::empty(1)));
    }

    #[test]
    fn subtract_zone_is_set_difference() {
        let mut f = Federation::empty(1);
        f.add(zone_between(0, 4));
        f.add(zone_between(6, 9));
        let d = f.subtract_zone(&zone_between(3, 7));
        for v in 0..=10i64 {
            let expected = f.contains_point(&[0, v]) && !(3..=7).contains(&v);
            assert_eq!(d.contains_point(&[0, v]), expected, "point {v}");
        }
        // Subtracting the empty zone is the identity on the denoted set.
        let id = f.subtract_zone(&Dbm::empty(1));
        for v in 0..=10i64 {
            assert_eq!(id.contains_point(&[0, v]), f.contains_point(&[0, v]));
        }
    }

    #[test]
    fn reduce_drops_union_covered_members_only() {
        let mut f = Federation::empty(1);
        f.add(zone_between(0, 4));
        f.add(zone_between(3, 7));
        // [2,6] is covered by [0,4] ∪ [3,7] but by neither alone, so plain
        // `add` keeps it; `reduce` drops it again.
        assert!(f.add(zone_between(2, 6)));
        assert_eq!(f.size(), 3);
        assert_eq!(f.reduce(), 1);
        assert_eq!(f.size(), 2);
        for v in 0..=8i64 {
            assert_eq!(f.contains_point(&[0, v]), (0..=7).contains(&v), "point {v}");
        }
        // Nothing else is droppable: a second reduce is a no-op.
        assert_eq!(f.reduce(), 0);
        assert_eq!(f.size(), 2);
    }

    #[test]
    fn absorb_convex_cascades_and_respects_exactness() {
        let mut f = Federation::empty(1);
        f.add(zone_between(0, 1));
        f.add(zone_between(1, 2));
        f.add(zone_between(5, 7));
        let mut zone = zone_between(2, 3);
        // [2,3] bridges [0,1]+[1,2] into [0,3]; [5,7] stays (gap).
        let absorbed = f.absorb_convex(&mut zone, 8);
        assert_eq!(absorbed, 2);
        assert_eq!(f.size(), 1);
        assert_eq!(zone.relation(&zone_between(0, 3)), Relation::Equal);
    }


    #[test]
    fn constrain_drops_emptied_members() {
        let mut f = Federation::empty(1);
        f.add(zone_between(0, 2));
        f.add(zone_between(5, 7));
        f.constrain(&Constraint::upper(Clock(1), Bound::weak(3)));
        assert_eq!(f.size(), 1);
        assert!(f.contains_point(&[0, 1]));
        assert!(!f.contains_point(&[0, 6]));
    }

    #[test]
    fn union_and_up() {
        let mut f = Federation::from_zone(zone_between(0, 1));
        let g = Federation::from_zone(zone_between(10, 11));
        f.union(&g);
        assert_eq!(f.size(), 2);
        f.up();
        assert!(f.contains_point(&[0, 100]));
    }

    #[test]
    fn reset_applies_to_all_members() {
        let mut f = Federation::empty(1);
        f.add(zone_between(0, 2));
        f.add(zone_between(5, 7));
        f.reset(Clock(1), 0);
        assert!(f.contains_point(&[0, 0]));
        assert!(!f.contains_point(&[0, 6]));
    }

    #[test]
    fn empty_zone_not_added() {
        let mut f = Federation::empty(1);
        assert!(!f.add(Dbm::empty(1)));
        assert!(f.is_empty());
    }
}
