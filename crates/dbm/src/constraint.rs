//! Atomic clock constraints `x_i − x_j ≺ m`.

use crate::{Bound, Clock};
use std::fmt;

/// Relational operator of a surface-syntax constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RelOp {
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `==`
    Eq,
    /// `≥`
    Ge,
    /// `>`
    Gt,
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RelOp::Lt => "<",
            RelOp::Le => "<=",
            RelOp::Eq => "==",
            RelOp::Ge => ">=",
            RelOp::Gt => ">",
        };
        f.write_str(s)
    }
}

/// An atomic difference constraint in DBM form: `left − right ≺ bound`.
///
/// Surface constraints such as `x ≥ 3` are normalised into this form via the
/// constructors ([`Constraint::upper`], [`Constraint::lower`],
/// [`Constraint::diff`], [`Constraint::from_rel`]); `x == 3` produces *two*
/// constraints and therefore has a dedicated helper [`Constraint::equal`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Minuend clock (`i` in `x_i − x_j ≺ m`).
    pub left: Clock,
    /// Subtrahend clock (`j`).
    pub right: Clock,
    /// The bound `(m, ≺)`.
    pub bound: Bound,
}

impl Constraint {
    /// `clock ≺ m` (upper bound on a single clock).
    pub fn upper(clock: Clock, bound: Bound) -> Constraint {
        Constraint {
            left: clock,
            right: Clock::REF,
            bound,
        }
    }

    /// `clock ≥ m` / `clock > m` expressed as `x0 − clock ≺ −m`.
    pub fn lower(clock: Clock, m: i64, strict: bool) -> Constraint {
        Constraint {
            left: Clock::REF,
            right: clock,
            bound: Bound::new(-m, strict),
        }
    }

    /// `left − right ≺ bound`.
    pub fn diff(left: Clock, right: Clock, bound: Bound) -> Constraint {
        Constraint { left, right, bound }
    }

    /// The pair of constraints equivalent to `clock == m`.
    pub fn equal(clock: Clock, m: i64) -> [Constraint; 2] {
        [
            Constraint::upper(clock, Bound::weak(m)),
            Constraint::lower(clock, m, false),
        ]
    }

    /// Normalises a surface constraint `left − right (op) m` into one or two
    /// DBM constraints.
    pub fn from_rel(left: Clock, right: Clock, op: RelOp, m: i64) -> Vec<Constraint> {
        match op {
            RelOp::Lt => vec![Constraint::diff(left, right, Bound::strict(m))],
            RelOp::Le => vec![Constraint::diff(left, right, Bound::weak(m))],
            RelOp::Gt => vec![Constraint::diff(right, left, Bound::strict(-m))],
            RelOp::Ge => vec![Constraint::diff(right, left, Bound::weak(-m))],
            RelOp::Eq => vec![
                Constraint::diff(left, right, Bound::weak(m)),
                Constraint::diff(right, left, Bound::weak(-m)),
            ],
        }
    }

    /// The negation of this constraint (`¬(x − y ≺ m)` is `y − x ≺' −m` with
    /// flipped strictness).
    pub fn negated(&self) -> Constraint {
        Constraint {
            left: self.right,
            right: self.left,
            bound: self.bound.negated(),
        }
    }

    /// Evaluates the constraint on a concrete valuation given as clock values
    /// indexed by clock index (index 0 must be 0).
    pub fn holds(&self, valuation: &[i64]) -> bool {
        let l = valuation[self.left.index()];
        let r = valuation[self.right.index()];
        self.bound.admits(l - r)
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} - {} {}", self.left, self.right, self.bound)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_and_lower() {
        let c = Constraint::upper(Clock(1), Bound::weak(5));
        assert_eq!(c.left, Clock(1));
        assert_eq!(c.right, Clock::REF);
        assert!(c.holds(&[0, 5]));
        assert!(!c.holds(&[0, 6]));

        let c = Constraint::lower(Clock(1), 3, false);
        assert!(c.holds(&[0, 3]));
        assert!(c.holds(&[0, 10]));
        assert!(!c.holds(&[0, 2]));

        let c = Constraint::lower(Clock(1), 3, true); // x > 3
        assert!(!c.holds(&[0, 3]));
        assert!(c.holds(&[0, 4]));
    }

    #[test]
    fn from_rel_covers_all_ops() {
        // x - y >= 2  ≡  y - x <= -2
        let cs = Constraint::from_rel(Clock(1), Clock(2), RelOp::Ge, 2);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].left, Clock(2));
        assert_eq!(cs[0].bound, Bound::weak(-2));

        let cs = Constraint::from_rel(Clock(1), Clock::REF, RelOp::Eq, 4);
        assert_eq!(cs.len(), 2);
        assert!(cs.iter().all(|c| c.holds(&[0, 4])));
        assert!(!cs.iter().all(|c| c.holds(&[0, 5])));
        assert!(!cs.iter().all(|c| c.holds(&[0, 3])));

        let cs = Constraint::from_rel(Clock(1), Clock::REF, RelOp::Gt, 4);
        assert!(cs[0].holds(&[0, 5]));
        assert!(!cs[0].holds(&[0, 4]));
    }

    #[test]
    fn negation_partitions_valuations() {
        let c = Constraint::upper(Clock(1), Bound::weak(5));
        let n = c.negated();
        for v in 0..10 {
            assert_ne!(c.holds(&[0, v]), n.holds(&[0, v]), "valuation {v}");
        }
    }
}
