//! Minimal offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as forward
//! declarations on the architecture model types — nothing serializes yet
//! (the `.tta` textual format in `tempo_ta::format` is hand-rolled).  With
//! no crates.io access, this proc-macro crate accepts the derives and emits
//! nothing, keeping the attribute surface source-compatible so the real
//! serde can be dropped in later without touching the model types.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
