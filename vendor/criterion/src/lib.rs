//! Minimal offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! `bench_function`, [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with `harness = false`
//! targets in mind.  Instead of criterion's warm-up, outlier rejection and
//! HTML reports, each benchmark runs `sample_size` timed iterations after a
//! single warm-up call and prints the mean wall-clock time per iteration.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// The benchmark driver handed to `criterion_group!` target functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Finishes the group (kept for API compatibility; reporting is
    /// per-benchmark).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("{id:<60} (no iterations recorded)");
        return;
    }
    let per_iter = bencher.elapsed / bencher.iterations as u32;
    println!(
        "{id:<60} {per_iter:>12?}/iter (mean of {} iterations)",
        bencher.iterations
    );
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Calls `routine` once to warm up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_and_ungrouped_benches_run() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("unit", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("counted", |b| b.iter(|| runs += 1));
        group.finish();
        // one warm-up + three timed iterations
        assert_eq!(runs, 4);
    }
}
