//! Minimal offline stand-in for `crossbeam`.
//!
//! Only [`deque::Injector`] and [`deque::Steal`] are provided — the FIFO
//! work queue the parallel zone-graph explorer shares between workers.  The
//! real crate's lock-free queue is replaced with a mutex-protected
//! `VecDeque`; the API (including the `Steal::Retry` arm) is preserved so
//! the explorer's retry loop compiles unchanged and the real crate can be
//! swapped back in for performance work later.

#![forbid(unsafe_code)]

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Result of a steal attempt on an [`Injector`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    /// A FIFO queue that any thread can push to and steal from.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(task);
        }

        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock() {
                Ok(mut q) => match q.pop_front() {
                    Some(task) => Steal::Success(task),
                    None => Steal::Empty,
                },
                Err(_) => Steal::Retry,
            }
        }

        pub fn len(&self) -> usize {
            self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal};

    #[test]
    fn fifo_order() {
        let q = Injector::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.steal(), Steal::Success(1));
        assert_eq!(q.steal(), Steal::Success(2));
        assert_eq!(q.steal(), Steal::Empty);
    }

    #[test]
    fn concurrent_producers_and_stealers() {
        let q = Injector::new();
        let stolen = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(|| {
                    for i in 0..500 {
                        q.push(i);
                    }
                    let _ = t;
                });
            }
            for _ in 0..4 {
                s.spawn(|| loop {
                    match q.steal() {
                        Steal::Success(_) => {
                            stolen.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        }
                        Steal::Retry => continue,
                        Steal::Empty => {
                            if stolen.load(std::sync::atomic::Ordering::SeqCst) == 2000 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(stolen.into_inner(), 2000);
    }
}
