//! Minimal offline stand-in for `crossbeam`.
//!
//! The [`deque`] module provides the work-distribution primitives the
//! parallel zone-graph explorer uses, with the real crate's API surface:
//!
//! * [`deque::Injector`] — a shared FIFO queue any thread can push to and
//!   steal from (used for seeding work),
//! * [`deque::Worker`] / [`deque::Stealer`] — per-worker deques with
//!   work-stealing: the owner pushes and pops its own deque (its lock is
//!   uncontended unless someone is actively stealing), idle workers steal
//!   from the opposite end of other workers' deques.
//!
//! The real crate's lock-free Chase–Lev deques are replaced with
//! mutex-protected `VecDeque`s (this stub is `#![forbid(unsafe_code)]`, and
//! a lock-free deque cannot be written without `unsafe`); because every
//! worker owns a *separate* deque, the hot path still avoids the single
//! global queue mutex that serialized all workers before.  The API
//! (including the `Steal::Retry` arm) matches the real crate so it can be
//! swapped back in unchanged when networked.

#![forbid(unsafe_code)]

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Upper bound on the number of tasks moved by one batch steal, matching
    /// the real crate's `MAX_BATCH`.  A thief takes at most half the victim's
    /// deque and never more than this many tasks, so a single steal cannot
    /// starve the victim or monopolize the thief.
    const MAX_BATCH: usize = 32;

    /// Result of a steal attempt on an [`Injector`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    /// Number of tasks a thief takes from a victim currently holding `len`
    /// tasks: half of them (rounded up, so a single task is still stolen),
    /// capped at [`MAX_BATCH`].
    fn batch_size(len: usize) -> usize {
        len.div_ceil(2).min(MAX_BATCH)
    }

    /// A FIFO queue that any thread can push to and steal from.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(task);
        }

        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock() {
                Ok(mut q) => match q.pop_front() {
                    Some(task) => Steal::Success(task),
                    None => Steal::Empty,
                },
                Err(_) => Steal::Retry,
            }
        }

        /// Steals a batch of tasks into `dest` and pops one of them.
        ///
        /// Takes up to half the injector's queue (capped at `MAX_BATCH`),
        /// pushes all but the first onto `dest`, and returns the first —
        /// the real crate's `steal_batch_and_pop` contract.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let batch = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                let n = batch_size(q.len());
                if n == 0 {
                    return Steal::Empty;
                }
                q.drain(..n).collect::<Vec<T>>()
            };
            let mut batch = batch.into_iter();
            let first = batch.next().expect("batch_size > 0");
            for task in batch {
                dest.push(task);
            }
            Steal::Success(first)
        }

        /// Steals a batch of tasks into `dest` without popping.
        pub fn steal_batch(&self, dest: &Worker<T>) -> Steal<()> {
            let batch = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                let n = batch_size(q.len());
                if n == 0 {
                    return Steal::Empty;
                }
                q.drain(..n).collect::<Vec<T>>()
            };
            for task in batch {
                dest.push(task);
            }
            Steal::Success(())
        }

        pub fn len(&self) -> usize {
            self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Scheduling flavor of a [`Worker`] deque.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Flavor {
        /// Owner pushes back and pops front (queue-like).
        Fifo,
        /// Owner pushes back and pops back (stack-like, the classic
        /// Chase–Lev discipline: hot recent work stays with the owner).
        Lifo,
    }

    /// A worker-owned deque.  The owning thread pushes and pops; other
    /// threads steal through [`Stealer`] handles obtained from
    /// [`Worker::stealer`].
    #[derive(Debug)]
    pub struct Worker<T> {
        deque: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
    }

    impl<T> Worker<T> {
        /// A FIFO worker: `pop` returns tasks in push order.
        pub fn new_fifo() -> Worker<T> {
            Worker {
                deque: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Fifo,
            }
        }

        /// A LIFO worker: `pop` returns the most recently pushed task.
        pub fn new_lifo() -> Worker<T> {
            Worker {
                deque: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Lifo,
            }
        }

        /// A stealer handle for this deque; cheap to clone and shareable
        /// across threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                deque: Arc::clone(&self.deque),
            }
        }

        pub fn push(&self, task: T) {
            self.deque
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(task);
        }

        pub fn pop(&self) -> Option<T> {
            let mut q = self.deque.lock().unwrap_or_else(|e| e.into_inner());
            match self.flavor {
                Flavor::Fifo => q.pop_front(),
                Flavor::Lifo => q.pop_back(),
            }
        }

        pub fn len(&self) -> usize {
            self.deque.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// A handle for stealing tasks from another worker's deque; steals from
    /// the front (the end opposite a LIFO owner), so thieves take the
    /// coldest work.
    #[derive(Debug)]
    pub struct Stealer<T> {
        deque: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Stealer<T> {
            Stealer {
                deque: Arc::clone(&self.deque),
            }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.deque.try_lock() {
                Ok(mut q) => match q.pop_front() {
                    Some(task) => Steal::Success(task),
                    None => Steal::Empty,
                },
                Err(std::sync::TryLockError::WouldBlock) => Steal::Retry,
                Err(std::sync::TryLockError::Poisoned(e)) => match e.into_inner().pop_front() {
                    Some(task) => Steal::Success(task),
                    None => Steal::Empty,
                },
            }
        }

        /// Drains a batch from the front of the victim's deque (up to half
        /// its contents, capped at `MAX_BATCH`) while holding its lock only
        /// once; `None` means the victim is busy (`Steal::Retry`).
        fn drain_batch(&self) -> Option<Vec<T>> {
            match self.deque.try_lock() {
                Ok(mut q) => {
                    let n = batch_size(q.len());
                    Some(q.drain(..n).collect())
                }
                Err(std::sync::TryLockError::WouldBlock) => None,
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    let mut q = e.into_inner();
                    let n = batch_size(q.len());
                    Some(q.drain(..n).collect())
                }
            }
        }

        /// Steals a batch of tasks into `dest` and pops one of them.
        ///
        /// One acquisition of the victim's lock moves up to half its deque
        /// (capped at `MAX_BATCH`) to the thief: all but the first task land
        /// on `dest`, the first is returned.  Amortizes the per-task steal
        /// cost that makes single-task stealing a bottleneck under
        /// fine-grained work.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let batch = match self.drain_batch() {
                Some(b) => b,
                None => return Steal::Retry,
            };
            let mut batch = batch.into_iter();
            match batch.next() {
                None => Steal::Empty,
                Some(first) => {
                    for task in batch {
                        dest.push(task);
                    }
                    Steal::Success(first)
                }
            }
        }

        /// Steals a batch of tasks into `dest` without popping.
        pub fn steal_batch(&self, dest: &Worker<T>) -> Steal<()> {
            let batch = match self.drain_batch() {
                Some(b) => b,
                None => return Steal::Retry,
            };
            if batch.is_empty() {
                return Steal::Empty;
            }
            for task in batch {
                dest.push(task);
            }
            Steal::Success(())
        }

        pub fn len(&self) -> usize {
            self.deque.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn worker_fifo_and_lifo_pop_order() {
        let fifo = Worker::new_fifo();
        fifo.push(1);
        fifo.push(2);
        assert_eq!(fifo.pop(), Some(1));
        assert_eq!(fifo.pop(), Some(2));
        assert_eq!(fifo.pop(), None);
        let lifo = Worker::new_lifo();
        lifo.push(1);
        lifo.push(2);
        assert_eq!(lifo.pop(), Some(2));
        assert_eq!(lifo.pop(), Some(1));
    }

    #[test]
    fn stealers_take_the_oldest_task() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        // Thief takes from the front (oldest), owner from the back (newest).
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(s.steal(), Steal::Empty);
        assert!(w.is_empty() && s.is_empty());
    }

    #[test]
    fn concurrent_stealing_drains_every_task() {
        let workers: Vec<Worker<usize>> = (0..4).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<_> = workers.iter().map(|w| w.stealer()).collect();
        for (i, w) in workers.iter().enumerate() {
            for t in 0..500 {
                w.push(i * 1000 + t);
            }
        }
        let taken = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| loop {
                    let mut progress = false;
                    for st in &stealers {
                        match st.steal() {
                            Steal::Success(_) => {
                                taken.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                                progress = true;
                            }
                            Steal::Retry => progress = true,
                            Steal::Empty => {}
                        }
                    }
                    if !progress && taken.load(std::sync::atomic::Ordering::SeqCst) == 2000 {
                        break;
                    }
                });
            }
        });
        assert_eq!(taken.into_inner(), 2000);
    }

    #[test]
    fn batch_steal_takes_half_up_to_the_cap() {
        let victim: Worker<usize> = Worker::new_fifo();
        let thief: Worker<usize> = Worker::new_fifo();
        for t in 0..10 {
            victim.push(t);
        }
        // 10 tasks: the thief takes half (5) — the oldest one is returned,
        // the remaining 4 land on its own deque in order.
        assert_eq!(victim.stealer().steal_batch_and_pop(&thief), Steal::Success(0));
        assert_eq!(thief.len(), 4);
        assert_eq!(victim.len(), 5);
        assert_eq!(thief.pop(), Some(1));
        // A huge victim still yields at most MAX_BATCH tasks per steal.
        let victim: Worker<usize> = Worker::new_fifo();
        let thief: Worker<usize> = Worker::new_fifo();
        for t in 0..500 {
            victim.push(t);
        }
        assert_eq!(victim.stealer().steal_batch(&thief), Steal::Success(()));
        assert_eq!(thief.len(), 32);
        assert_eq!(victim.len(), 468);
    }

    #[test]
    fn batch_steal_on_empty_and_single_task_deques() {
        let victim: Worker<usize> = Worker::new_fifo();
        let thief: Worker<usize> = Worker::new_fifo();
        assert_eq!(victim.stealer().steal_batch_and_pop(&thief), Steal::Empty);
        assert_eq!(victim.stealer().steal_batch(&thief), Steal::Empty);
        victim.push(7);
        // A single task is still stolen (half rounds up).
        assert_eq!(victim.stealer().steal_batch_and_pop(&thief), Steal::Success(7));
        assert!(victim.is_empty() && thief.is_empty());
    }

    #[test]
    fn injector_batch_steal_preserves_fifo_order() {
        let q: Injector<usize> = Injector::new();
        let w: Worker<usize> = Worker::new_fifo();
        for t in 0..8 {
            q.push(t);
        }
        assert_eq!(q.steal_batch_and_pop(&w), Steal::Success(0));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), None);
        assert_eq!(q.len(), 4);
        assert_eq!(q.steal_batch(&w), Steal::Success(()));
        assert_eq!(w.pop(), Some(4));
        assert_eq!(q.steal_batch_and_pop(&w), Steal::Success(6));
        let empty: Injector<usize> = Injector::new();
        assert_eq!(empty.steal_batch_and_pop(&w), Steal::Empty);
        assert_eq!(empty.steal_batch(&w), Steal::Empty);
    }

    #[test]
    fn fifo_order() {
        let q = Injector::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.steal(), Steal::Success(1));
        assert_eq!(q.steal(), Steal::Success(2));
        assert_eq!(q.steal(), Steal::Empty);
    }

    #[test]
    fn concurrent_producers_and_stealers() {
        let q = Injector::new();
        let stolen = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(|| {
                    for i in 0..500 {
                        q.push(i);
                    }
                    let _ = t;
                });
            }
            for _ in 0..4 {
                s.spawn(|| loop {
                    match q.steal() {
                        Steal::Success(_) => {
                            stolen.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        }
                        Steal::Retry => continue,
                        Steal::Empty => {
                            if stolen.load(std::sync::atomic::Ordering::SeqCst) == 2000 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(stolen.into_inner(), 2000);
    }
}
