//! `any::<T>()` support for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Generates any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_takes_both_values() {
        let mut rng = TestRng::new(1);
        let strat = any::<bool>();
        let vals: Vec<bool> = (0..64).map(|_| strat.generate(&mut rng)).collect();
        assert!(vals.iter().any(|&b| b) && vals.iter().any(|&b| !b));
    }
}
