//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// Alias for the crate root so `prop::collection::vec(..)` etc. resolve
/// after a prelude glob import, as with the real crate.
pub use crate as prop;
