//! Deterministic RNG and configuration for the property-test runner.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// FNV-1a hash, used to derive a per-test base seed from its name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 generator: small, fast and deterministic across platforms.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(7);
        for n in [1u64, 2, 3, 17, 1 << 40] {
            for _ in 0..100 {
                assert!(rng.below(n) < n);
            }
        }
    }
}
