//! The [`Strategy`] trait and its combinators (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies a function to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy it
    /// selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into one more level of structure.  `depth`
    /// bounds the nesting; the size/branch hints are accepted for API
    /// compatibility but unused (there is no shrinking to steer).
    ///
    /// The closure is invoked lazily, during generation — mutually recursive
    /// strategy constructors (an expression grammar whose recursive arms
    /// rebuild strategies for other nonterminals) must not recurse at
    /// construction time, exactly as with the real crate.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            leaf: self.boxed(),
            depth,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    depth: u32,
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            leaf: self.leaf.clone(),
            depth: self.depth,
            recurse: Rc::clone(&self.recurse),
        }
    }
}

impl<T: 'static> Recursive<T> {
    /// The strategy for values of nesting at most `depth`.  Built per
    /// generation so the user closure runs only as deep as the generated
    /// value actually requires; leaves stay likely at every level so
    /// structures vary in depth rather than always bottoming out at `depth`.
    fn strategy_at(&self, depth: u32) -> BoxedStrategy<T> {
        if depth == 0 {
            return self.leaf.clone();
        }
        let deeper = (self.recurse)(self.strategy_at(depth - 1));
        Union::new(vec![(1, self.leaf.clone()), (2, deeper)]).boxed()
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.strategy_at(self.depth).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, R> Strategy for FlatMap<S, F>
where
    S: Strategy,
    R: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R::Value;

    fn generate(&self, rng: &mut TestRng) -> R::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Weighted choice between strategies of a common value type; the engine
/// behind `prop_oneof!`.
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights summed to total")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strat = (0i64..10, (1u32..=3).prop_map(|x| x * 2)).prop_map(|(a, b)| a + b as i64);
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..=15).contains(&v), "v={v}");
        }
    }

    #[test]
    fn union_respects_zero_weight_absence() {
        let strat: Union<u8> = Union::new(vec![(1, Just(1u8).boxed()), (3, Just(2u8).boxed())]);
        let mut rng = TestRng::new(11);
        let mut counts = [0usize; 3];
        for _ in 0..1000 {
            counts[strat.generate(&mut rng) as usize - 1] += 1;
        }
        assert!(counts[0] > 100 && counts[1] > 500, "counts={counts:?}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10).prop_map(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::new(3);
        let mut max = 0;
        for _ in 0..500 {
            max = max.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max >= 1 && max <= 3, "max={max}");
    }

    #[test]
    fn flat_map_threads_intermediate_values() {
        let strat = (1usize..5).prop_flat_map(|n| crate::collection::vec(0i64..10, n));
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
