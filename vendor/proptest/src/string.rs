//! String generation from a small regex subset.
//!
//! `&'static str` implements [`Strategy`] by interpreting the string as a
//! pattern.  Supported syntax (enough for the patterns in this workspace,
//! e.g. `"[a-z][a-z0-9_]{0,6}"`): literal characters, character classes
//! `[..]` with ranges and singletons, and the quantifiers `{n}`, `{n,m}`,
//! `?`, `*`, `+` (unbounded quantifiers are capped at 8 repetitions).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

const UNBOUNDED_CAP: usize = 8;

#[derive(Clone, Debug)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let lo = prev.take().expect("checked is_some");
                            let hi = chars.next().expect("checked peek");
                            assert!(lo <= hi, "reversed range in pattern {pattern:?}");
                            ranges.push((lo, hi));
                        }
                        c => {
                            if let Some(p) = prev.replace(c) {
                                ranges.push((p, p));
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    ranges.push((p, p));
                }
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            c => Atom::Literal(c),
        };
        let (min, max) = match chars.peek() {
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                chars.next();
                (1, UNBOUNDED_CAP)
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => {
                        let lo: usize = lo.trim().parse().expect("quantifier lower bound");
                        let hi: usize = if hi.trim().is_empty() {
                            lo + UNBOUNDED_CAP
                        } else {
                            hi.trim().parse().expect("quantifier upper bound")
                        };
                        (lo, hi)
                    }
                    None => {
                        let n: usize = spec.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn generate_from(pieces: &[Piece], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in pieces {
        let count = if piece.min == piece.max {
            piece.min
        } else {
            piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize
        };
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1)
                        .sum();
                    let mut pick = rng.below(total);
                    for &(lo, hi) in ranges {
                        let span = (hi as u64) - (lo as u64) + 1;
                        if pick < span {
                            out.push(char::from_u32(lo as u32 + pick as u32).expect("valid char"));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        // Parsing on every call keeps the strategy `Copy`-cheap; the
        // patterns in this repo are a handful of characters.
        generate_from(&parse_pattern(self), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_pattern_matches_shape() {
        let strat = "[a-z][a-z0-9_]{0,6}";
        let mut rng = TestRng::new(4);
        for _ in 0..500 {
            let s = strat.generate(&mut rng);
            let mut cs = s.chars();
            let first = cs.next().expect("nonempty");
            assert!(first.is_ascii_lowercase(), "{s:?}");
            assert!(s.len() <= 7, "{s:?}");
            assert!(
                cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn quantifiers_and_literals() {
        let mut rng = TestRng::new(8);
        assert_eq!("abc".generate(&mut rng), "abc");
        for _ in 0..100 {
            let s = "x[0-9]+y?".generate(&mut rng);
            assert!(s.starts_with('x'), "{s:?}");
            let digits = s[1..].trim_end_matches('y');
            assert!(!digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit()), "{s:?}");
        }
    }
}
