//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// falls in `size` (a `usize` for an exact length, or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::new(2);
        let exact = vec(0i64..5, 4usize);
        assert_eq!(exact.generate(&mut rng).len(), 4);
        let ranged = vec(0i64..5, 1..4usize);
        for _ in 0..100 {
            let n = ranged.generate(&mut rng).len();
            assert!((1..4).contains(&n));
        }
        let inclusive = vec(0i64..5, 0..=2usize);
        for _ in 0..100 {
            assert!(inclusive.generate(&mut rng).len() <= 2);
        }
    }
}
