//! Minimal offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! `prop_flat_map`, `prop_recursive` and `boxed`; strategies for ranges,
//! tuples, [`Just`](strategy::Just), `any::<T>()`, simple regex string
//! patterns and [`collection::vec`]; and the [`proptest!`], [`prop_oneof!`]
//! and `prop_assert*` macros.
//!
//! Differences from the real crate, chosen deliberately for this repo:
//!
//! * **Deterministic by construction** — every generated case is derived
//!   from an FNV-1a hash of the test's module path and name plus the case
//!   index, so a failing case reproduces on every run and machine with no
//!   `proptest-regressions` files.
//! * **No shrinking** — a failure reports the generated inputs via the
//!   panic message (`Debug` formatting in `prop_assert*`), unminimized.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Runs a block of property tests.
///
/// Supports the same surface syntax as the real macro for the forms used in
/// this workspace: an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::new(
                        seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Picks one of several strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
