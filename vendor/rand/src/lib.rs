//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the subset of the rand 0.8 API used by this workspace:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! integer and float ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`].  The generator is a fixed xoshiro256++,
//! so all seeded streams are fully deterministic across runs and platforms.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Seeds the full generator state from a single `u64` via SplitMix64,
    /// matching the approach rand 0.8 uses for `seed_from_u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// Panics when the range is empty, like the real implementation.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps a `u64` to `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded sampling (Lemire-style multiply-shift would need
/// u128 anyway, so plain widening multiply is used; the bias is far below
/// anything a test could observe).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample_from(rng) as f32
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the stand-in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut state);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice extension trait providing a Fisher–Yates shuffle.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-30i64..30);
            assert!((-30..30).contains(&v));
            let w = rng.gen_range(1u32..=3);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(0.0f64..5.0);
            assert!((0.0..5.0).contains(&f));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_is_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
