//! Minimal offline stand-in for `parking_lot`.
//!
//! Only [`Mutex`] is provided (the one type this workspace uses).  It wraps
//! `std::sync::Mutex` and mirrors parking_lot's API shape: `lock()` returns
//! the guard directly instead of a `Result`, recovering from poisoning, so
//! call sites written against the real crate compile unchanged.

#![forbid(unsafe_code)]

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.  Unlike
    /// `std::sync::Mutex::lock` this never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
